"""Sessions: the leader-node statement driver.

A session parses SQL, plans it, runs it through the configured executor,
and manages transactions (autocommit per statement unless BEGIN is
active). It implements the full statement set: queries, DDL, DML, COPY,
ANALYZE [COMPRESSION], VACUUM [REINDEX], EXPLAIN, and transaction control.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.compression.analyzer import CompressionAnalyzer
from repro.datatypes.parsing import parse_literal
from repro.datatypes.types import type_from_name, varchar_type
from repro.distribution.diststyle import DistStyle, make_distribution
from repro.engine.catalog import (
    ColumnInfo,
    ColumnStatistics,
    TableInfo,
    TableStatistics,
)
from repro.engine.cluster import Cluster
from repro.engine.transactions import BOOTSTRAP_XID
from repro.errors import (
    QUERY_RECOVERABLE_ERRORS,
    AnalysisError,
    ClusterReadOnlyError,
    CopyError,
    DataError,
    ExecutionError,
    QueryRetryExhaustedError,
    ReproError,
    SpillCapacityError,
    TableNotFoundError,
    TransactionError,
)
from repro.exec import workers
from repro.exec.codegen import CompiledExecutor
from repro.exec.context import ExecutionContext, ParallelConfig, QueryStats
from repro.exec.spill import MemoryBudget
from repro.exec.parallel import ParallelExecutor
from repro.exec.vectorized import VectorizedExecutor
from repro.exec.volcano import VolcanoExecutor
from repro.plan.binder import Binder, infer_type
from repro.plan.physical import PhysicalPlanner, PhysicalScan, explain
from repro.sql import ast
from repro.sql.expressions import compile_expression, literal_value
from repro.sql.hll import HyperLogLog
from repro.sql.parser import parse_statement, parse_statements
from repro.storage import epoch
from repro.util.fingerprint import result_fingerprint


@dataclass
class QueryResult:
    """Rows plus metadata from one statement execution."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    stats: QueryStats = field(default_factory=QueryStats)
    command: str = ""

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        """All values of one named output column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"no output column {name!r}") from None
        return [row[index] for row in self.rows]


#: The selectable execution engines (``SET executor = <name>``).
_EXECUTORS = {
    "volcano": VolcanoExecutor,
    "compiled": CompiledExecutor,
    "vectorized": VectorizedExecutor,
    "parallel": ParallelExecutor,
}

#: Statement types refused while the cluster is degraded to read-only.
_WRITE_STATEMENTS = (
    ast.CreateTableStatement,
    ast.CreateTableAsStatement,
    ast.DropTableStatement,
    ast.InsertStatement,
    ast.DeleteStatement,
    ast.UpdateStatement,
    ast.CopyStatement,
    ast.VacuumStatement,
)


class Session:
    """One client connection to a cluster."""

    #: Leader-side segment retries before a recoverable fault becomes fatal.
    MAX_SEGMENT_RETRIES = 3

    def __init__(
        self,
        cluster: Cluster,
        executor: str = "compiled",
        parallelism: int | None = None,
        pool_mode: str | None = None,
        memory_limit: int | None = None,
        user_name: str = "",
        queue: str = "default",
    ):
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}")
        if parallelism is not None and parallelism < 1:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        if pool_mode is not None and pool_mode not in ("fork", "thread", "serial"):
            raise ValueError(f"unknown pool mode {pool_mode!r}")
        self._cluster = cluster
        #: Cluster-unique connection identity; stl_query rows carry it so
        #: capture/replay can reconstruct per-session query streams.
        self.session_id = next(cluster._session_ids)
        self.user_name = user_name
        self.queue_name = queue
        #: Per-session admission gate override. The concurrent server
        #: (:class:`repro.server.ClusterServer`) installs its live
        #: per-queue SlotGate here; None falls back to the cluster gate.
        self.wlm_gate = None
        self._executor_kind = executor
        #: Workers per parallel pipeline; None = one per slice (capped to
        #: the machine's cores), the paper's slice-per-core layout.
        self._parallelism = parallelism
        self._pool_mode = pool_mode
        self._binder = Binder(cluster.catalog)
        #: ``SET enable_cbo``: cost-based join enumeration and operator
        #: selection (on by default); off keeps joins in written order.
        self._enable_cbo = bool(getattr(cluster, "enable_cbo_default", True))
        self._planner = PhysicalPlanner(
            cluster.catalog, cluster.slice_count, enable_cbo=self._enable_cbo
        )
        self._xid: int | None = None  # explicit transaction, if any
        #: ``SET enable_result_cache``; the cluster's parameter-group
        #: default (on, as in Redshift) unless overridden per session.
        self._enable_result_cache = bool(
            getattr(cluster, "enable_result_cache_default", True)
        )
        if memory_limit is not None and memory_limit < 1:
            raise ValueError(
                f"memory_limit must be positive bytes, got {memory_limit}"
            )
        #: ``SET query_memory_limit``: explicit per-query operator-memory
        #: cap in bytes. None derives one from the cluster's memory pool
        #: and the admitting WLM queue's per-slot share (or runs
        #: unbounded when neither is configured).
        self._memory_limit = memory_limit
        #: ``SET enable_spill``: off pins the pre-governor behaviour
        #: (unbounded operator memory, never spills).
        self._enable_spill = bool(getattr(cluster, "enable_spill_default", True))
        #: ``SET enable_encoded_scan``: off forces vectorized scans to
        #: decode every block up front (the pre-operate-on-compressed
        #: behaviour) instead of handing encoded columns to the kernels.
        self._enable_encoded_scan = bool(
            getattr(cluster, "enable_encoded_scan_default", True)
        )
        #: SELECT nesting depth — only the outermost SELECT of a
        #: statement consults the WLM admission gate (subqueries ride
        #: their parent's admission).
        self._select_depth = 0

    # ---- public API ---------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Execute exactly one SQL statement."""
        statement = parse_statement(sql)
        return self._execute_statement(statement)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a semicolon-separated script, returning all results."""
        return [self._execute_statement(s) for s in parse_statements(sql)]

    def set_executor(self, executor: str) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}")
        self._executor_kind = executor

    @property
    def in_transaction(self) -> bool:
        return self._xid is not None

    # ---- transaction plumbing ---------------------------------------------------

    def _begin_statement_txn(self) -> tuple[int, bool]:
        """Returns (xid, autocommit?)."""
        if self._xid is not None:
            return self._xid, False
        return self._cluster.transactions.begin(), True

    def _finish_statement_txn(self, xid: int, autocommit: bool, ok: bool) -> None:
        if not autocommit:
            return
        if ok:
            self._cluster.transactions.commit(xid)
        else:
            self._cluster.transactions.rollback(xid)

    # ---- dispatch ----------------------------------------------------------------

    def _execute_statement(self, statement: ast.Statement) -> QueryResult:
        """Execute one statement, recording it into stl_query."""
        systables = self._cluster.systables
        if systables is None:
            return self._execute_statement_inner(statement)
        query_id = systables.next_query_id()
        started = systables.now
        t0 = time.perf_counter()
        try:
            result = self._execute_statement_inner(statement)
        except ReproError as exc:
            systables.record_query(
                query_id,
                text=statement.to_sql(),
                state="error",
                started=started,
                ended=systables.now,
                elapsed_us=int((time.perf_counter() - t0) * 1_000_000),
                error=str(exc),
                queue=self.queue_name,
                session_id=self.session_id,
                user_name=self.user_name,
            )
            raise
        fingerprint = ""
        if result.command == "SELECT":
            fingerprint = result_fingerprint(result.columns, result.rows)
        systables.record_query(
            query_id,
            text=statement.to_sql(),
            state="success",
            started=started,
            ended=systables.now,
            elapsed_us=int((time.perf_counter() - t0) * 1_000_000),
            executor=result.stats.executor if result.stats else None,
            rows=result.rowcount,
            segment_retries=result.stats.segment_retries if result.stats else 0,
            queue=self.queue_name,
            session_id=self.session_id,
            user_name=self.user_name,
            result_fingerprint=fingerprint,
        )
        if result.stats and result.stats.operators:
            systables.record_query_summary(
                query_id,
                result.stats.operators,
                result_cache_hit=result.stats.result_cache_hit,
            )
        if result.stats and result.stats.scan.encoding:
            systables.record_scan_encoding(query_id, result.stats.scan.encoding)
        if result.stats and result.stats.slice_exec:
            systables.record_slice_exec(query_id, result.stats.slice_exec)
        if result.stats and result.stats.spill_events:
            systables.record_query_spill(query_id, result.stats.spill_events)
        return result

    def _execute_statement_inner(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.BeginStatement):
            if self._xid is not None:
                raise TransactionError("a transaction is already in progress")
            self._xid = self._cluster.transactions.begin()
            return QueryResult(command="BEGIN")
        if isinstance(statement, ast.CommitStatement):
            if self._xid is None:
                raise TransactionError("no transaction in progress")
            self._cluster.transactions.commit(self._xid)
            self._xid = None
            return QueryResult(command="COMMIT")
        if isinstance(statement, ast.RollbackStatement):
            if self._xid is None:
                raise TransactionError("no transaction in progress")
            self._cluster.transactions.rollback(self._xid)
            self._xid = None
            return QueryResult(command="ROLLBACK")
        if isinstance(statement, ast.SetStatement):
            return self._set_parameter(statement)
        if isinstance(statement, ast.ExplainStatement):
            if not statement.analyze:
                return self._explain(statement.statement)
            if not isinstance(statement.statement, ast.SelectStatement):
                raise AnalysisError(
                    "EXPLAIN ANALYZE supports only SELECT statements"
                )
            # EXPLAIN ANALYZE runs the query, so it needs a snapshot
            # like any SELECT; fall through to the transaction path.

        xid, autocommit = self._begin_statement_txn()
        try:
            result = self._dispatch(statement, xid)
        except ReproError:
            self._finish_statement_txn(xid, autocommit, ok=False)
            raise
        self._finish_statement_txn(xid, autocommit, ok=True)
        return result

    def _dispatch(self, statement: ast.Statement, xid: int) -> QueryResult:
        if self._cluster.read_only and isinstance(statement, _WRITE_STATEMENTS):
            # Degraded mode keeps answering reads (§5's escalator): only
            # statements that would mutate storage are refused.
            raise ClusterReadOnlyError(self._cluster.read_only_reason or "")
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement.query, xid)
        if isinstance(statement, ast.ExplainStatement):
            return self._explain_analyze(statement.statement, xid)
        if isinstance(statement, ast.CreateTableStatement):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateTableAsStatement):
            return self._create_table_as(statement, xid)
        if isinstance(statement, ast.DropTableStatement):
            return self._drop_table(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._insert(statement, xid)
        if isinstance(statement, ast.DeleteStatement):
            return self._delete(statement, xid)
        if isinstance(statement, ast.UpdateStatement):
            return self._update(statement, xid)
        if isinstance(statement, ast.CopyStatement):
            return self._copy(statement, xid)
        if isinstance(statement, ast.AnalyzeStatement):
            return self._analyze(statement, xid)
        if isinstance(statement, ast.VacuumStatement):
            return self._vacuum(statement, xid)
        raise AnalysisError(
            f"unsupported statement {type(statement).__name__}"
        )

    def _set_parameter(self, statement: ast.SetStatement) -> QueryResult:
        """``SET name = value``: session parameters. ``executor`` selects
        the execution engine (volcano | compiled | vectorized | parallel);
        ``parallelism`` sets the parallel executor's workers per pipeline."""
        name = statement.name.lower()
        if name == "executor":
            try:
                self.set_executor(statement.value.lower())
            except ValueError as exc:
                raise AnalysisError(str(exc)) from exc
            return QueryResult(command="SET")
        if name == "parallelism":
            try:
                degree = int(statement.value)
            except (TypeError, ValueError):
                raise AnalysisError(
                    f"parallelism must be an integer, got {statement.value!r}"
                ) from None
            if degree < 1:
                raise AnalysisError(
                    f"parallelism must be positive, got {degree}"
                )
            self._parallelism = degree
            return QueryResult(command="SET")
        if name == "enable_result_cache":
            value = str(statement.value).lower()
            if value in ("on", "true", "1"):
                self._enable_result_cache = True
            elif value in ("off", "false", "0"):
                self._enable_result_cache = False
            else:
                raise AnalysisError(
                    "enable_result_cache expects on/off, got "
                    f"{statement.value!r}"
                )
            return QueryResult(command="SET")
        if name == "query_memory_limit":
            value = str(statement.value).lower()
            if value in ("off", "unlimited", "none", "0"):
                self._memory_limit = None
                return QueryResult(command="SET")
            try:
                limit = int(statement.value)
            except (TypeError, ValueError):
                raise AnalysisError(
                    "query_memory_limit expects bytes or off/unlimited, "
                    f"got {statement.value!r}"
                ) from None
            if limit < 1:
                raise AnalysisError(
                    f"query_memory_limit must be positive, got {limit}"
                )
            self._memory_limit = limit
            return QueryResult(command="SET")
        if name == "enable_spill":
            value = str(statement.value).lower()
            if value in ("on", "true", "1"):
                self._enable_spill = True
            elif value in ("off", "false", "0"):
                self._enable_spill = False
            else:
                raise AnalysisError(
                    f"enable_spill expects on/off, got {statement.value!r}"
                )
            return QueryResult(command="SET")
        if name == "enable_encoded_scan":
            value = str(statement.value).lower()
            if value in ("on", "true", "1"):
                self._enable_encoded_scan = True
            elif value in ("off", "false", "0"):
                self._enable_encoded_scan = False
            else:
                raise AnalysisError(
                    "enable_encoded_scan expects on/off, got "
                    f"{statement.value!r}"
                )
            return QueryResult(command="SET")
        if name == "enable_cbo":
            value = str(statement.value).lower()
            if value in ("on", "true", "1"):
                self._enable_cbo = True
            elif value in ("off", "false", "0"):
                self._enable_cbo = False
            else:
                raise AnalysisError(
                    f"enable_cbo expects on/off, got {statement.value!r}"
                )
            self._planner = PhysicalPlanner(
                self._cluster.catalog,
                self._cluster.slice_count,
                enable_cbo=self._enable_cbo,
            )
            return QueryResult(command="SET")
        raise AnalysisError(f"unknown session parameter {statement.name!r}")

    # ---- SELECT ---------------------------------------------------------------------

    def effective_parallelism(self) -> int:
        """Workers per parallel pipeline: the configured degree, or one
        worker per slice capped to the machine's cores."""
        if self._parallelism is not None:
            return self._parallelism
        return max(1, min(self._cluster.slice_count, os.cpu_count() or 1))

    def effective_memory_limit(self) -> int | None:
        """The per-query operator-memory cap in bytes, or None (unbounded).

        Resolution order: ``SET enable_spill = off`` disables governance
        outright; an explicit session limit (``SET query_memory_limit`` /
        ``connect(memory_limit=...)``) wins; otherwise the cluster's
        memory pool priced by the admitting WLM queue's per-slot share.
        """
        if not self._enable_spill:
            return None
        if self._memory_limit is not None:
            return self._memory_limit
        pool = getattr(self._cluster, "memory_bytes", None)
        manager = getattr(self._cluster, "workload_manager", None)
        gate = self._admission_gate()
        if not pool or manager is None or gate is None:
            return None
        try:
            fraction = manager.memory_per_slot_fraction(gate.queue)
        except KeyError:
            return None
        return max(1, int(pool * fraction))

    def _admission_gate(self):
        """The WLM gate this session faces: the server-installed live
        per-queue gate when one is set, else the cluster-wide gate."""
        if self.wlm_gate is not None:
            return self.wlm_gate
        return self._cluster.wlm_gate

    def _context(self, xid: int) -> ExecutionContext:
        # Each query gets its own interconnect so its stats are scoped to
        # it; totals roll up to the cluster interconnect afterwards.
        from repro.engine.network import Interconnect

        ctx = ExecutionContext(
            slices=self._cluster.slice_stores,
            snapshot=self._cluster.transactions.snapshot(xid),
            interconnect=Interconnect(),
            fault_injector=self._cluster.fault_injector,
            block_cache=self._cluster.block_cache,
            encoded_scan=self._enable_encoded_scan,
            segment_cache=self._cluster.segment_cache,
        )
        limit = self.effective_memory_limit()
        if limit is not None:
            from repro.storage.spillfile import SpillManager

            ctx.memory_budget = MemoryBudget(limit)
            ctx.spill = SpillManager(injector=self._cluster.fault_injector)
        if self._executor_kind == "parallel":
            ctx.parallel = ParallelConfig(
                degree=self.effective_parallelism(),
                mode=self._pool_mode or workers.default_mode(),
                pool_manager=self._cluster.pool_manager,
                registry_id=self._cluster.worker_registry_id,
            )
        ctx.stats.network = ctx.interconnect.stats
        return ctx

    def _run_select(self, query, xid: int) -> QueryResult:
        # Depth tracking: subqueries re-enter here recursively, but only
        # the outermost SELECT of a statement faces WLM admission.
        top_level = self._select_depth == 0
        self._select_depth += 1
        try:
            return self._select(query, xid, top_level)
        finally:
            self._select_depth -= 1

    def _select(self, query, xid: int, top_level: bool) -> QueryResult:
        from repro.sql.subqueries import expand_subqueries

        expand_subqueries(
            query, lambda inner: self._run_select(inner, xid).rows
        )
        logical = self._binder.bind_select(query)
        columns = [c.name for c in logical.output]
        physical = self._planner.plan(logical)
        self._cluster.workload.record_plan(physical)
        # System-table scans read from rows materialized once per query
        # (a stable snapshot across retries), not from slice storage.
        system_rows = self._system_scan_rows(physical)

        # Result cache: only autocommit SELECTs over user tables are
        # eligible. Inside an explicit transaction this session may read
        # its own uncommitted writes — rows no other query should be
        # served — and system-table rows have no mutation epochs to
        # validate against.
        result_cache = self._cluster.result_cache
        cache_key: str | None = None
        sql_text = ""
        scan_tables: tuple[str, ...] = ()
        owns_flight = False
        if (
            result_cache is not None
            and self._enable_result_cache
            and self._xid is None
            and not system_rows
        ):
            from repro.engine.resultcache import result_cache_key

            sql_text = query.to_sql()
            scan_tables = self._user_scan_tables(physical)
            cache_key = result_cache_key(
                sql_text, explain(physical), self._executor_kind
            )
            # Single-flight: N concurrent sessions missing on the same
            # key execute once — one leads, the rest wait here and are
            # served the entry the leader stored.
            entry, owns_flight = result_cache.lead_or_wait(cache_key)
            if entry is not None:
                return self._serve_cached(entry, physical, top_level)
        try:
            return self._execute_select(
                query, xid, top_level, physical, columns, system_rows,
                result_cache, cache_key, sql_text, scan_tables,
            )
        finally:
            # Wake the waiters no matter how the execution ended; a
            # waiter finding no stored entry leads the next flight.
            if owns_flight:
                result_cache.finish_flight(cache_key)

    def _execute_select(
        self,
        query,
        xid: int,
        top_level: bool,
        physical,
        columns: list[str],
        system_rows: dict[str, list[tuple]],
        result_cache,
        cache_key: str | None,
        sql_text: str,
        scan_tables: tuple[str, ...],
    ) -> QueryResult:
        gate = self._admission_gate()
        if gate is not None and top_level:
            gate.admit(sql_text or query.to_sql())
        entry_epochs: tuple[int, ...] = ()
        retries = 0
        while True:
            # Each attempt gets a fresh context: a retried segment restarts
            # with clean scan/network accounting against repaired storage.
            # Referenced-table epochs are re-captured per attempt for the
            # same reason — recovery repairs storage (moving epochs)
            # between attempts, and the stored entry must be validated
            # against the state the winning attempt actually read.
            entry_epochs = tuple(
                epoch.table_epoch(table) for table in scan_tables
            )
            ctx = self._context(xid)
            if cache_key is not None:
                # Cached (autocommit) SELECTs must freeze their snapshot
                # AFTER the epoch capture above: a commit between the
                # transaction-start snapshot and the capture would be
                # invisible to the result yet already in the epochs,
                # storing a stale entry that validates forever.
                ctx.snapshot = self._cluster.transactions.statement_snapshot(
                    xid
                )
            ctx.system_rows = system_rows
            ctx.stats.executor = self._executor_kind
            ctx.stats.plan_text = explain(physical)
            ctx.stats.segment_retries = retries
            executor = _EXECUTORS[self._executor_kind](ctx)
            start = time.perf_counter()
            try:
                rows = executor.execute(physical)
            except SpillCapacityError:
                # Out of temp space (real capacity or an injected
                # DISK_FULL window): shed the query cleanly — typed
                # error to the client, a WLM rule action for operators.
                self._record_spill_shed(sql_text or query.to_sql())
                raise
            except QUERY_RECOVERABLE_ERRORS as exc:
                handler = self._cluster.recovery_handler
                if handler is None:
                    raise
                retries += 1
                if retries > self.MAX_SEGMENT_RETRIES or not handler(exc):
                    raise QueryRetryExhaustedError(retries, exc) from exc
                continue
            finally:
                # Whatever way the attempt ended — success, retry, shed,
                # abort — its spill files are reclaimed here, so no temp
                # bytes ever leak onto the slice disks.
                if ctx.spill is not None:
                    ctx.spill.release_all()
            break
        ctx.stats.execute_seconds = time.perf_counter() - start
        ctx.stats.rows_returned = len(rows)
        if ctx.memory_budget is not None:
            ctx.stats.peak_memory_bytes = ctx.memory_budget.peak_bytes
        self._cluster.interconnect.absorb(ctx.interconnect.stats)
        if cache_key is not None:
            result_cache.store(
                cache_key,
                sql_text,
                self._executor_kind,
                columns,
                rows,
                scan_tables,
                entry_epochs,
            )
            ctx.stats.result_cache_status = "miss"
        return QueryResult(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            stats=ctx.stats,
            command="SELECT",
        )

    def _record_spill_shed(self, label: str) -> None:
        """Log a spill-capacity shed into stl_wlm_rule_action, next to
        the admission sheds it is the execution-time sibling of."""
        systables = self._cluster.systables
        if systables is None:
            return
        gate = self._admission_gate()
        systables.store.append(
            "stl_wlm_rule_action",
            (
                systables.now,
                gate.queue if gate is not None else "default",
                "shed",
                label[:128],
                0.0,
            ),
        )

    def _serve_cached(self, entry, physical, top_level: bool) -> QueryResult:
        """Answer a SELECT from the result cache: no execution, and no
        WLM admission — the gate records a bypass instead."""
        from repro.exec.context import OperatorStat

        stats = QueryStats()
        stats.executor = entry.executor
        stats.plan_text = explain(physical)
        stats.result_cache_hit = True
        stats.result_cache_status = "hit"
        rows = list(entry.rows)
        stats.rows_returned = len(rows)
        # One synthetic step (-1 never collides with a plan step, so
        # EXPLAIN ANALYZE renders every plan line "(never executed)"):
        # the hit still lands a row in svl_query_summary.
        stats.operators = [
            OperatorStat(step=-1, operator="Result Cache", rows=len(rows))
        ]
        gate = self._admission_gate()
        if gate is not None and top_level:
            gate.record_bypass(entry.sql)
        return QueryResult(
            columns=list(entry.columns),
            rows=rows,
            rowcount=len(rows),
            stats=stats,
            command="SELECT",
        )

    def _user_scan_tables(self, plan) -> tuple[str, ...]:
        """The user tables the physical plan scans, sorted (the result
        cache entry's invalidation dependencies)."""
        catalog = self._cluster.catalog
        names: set[str] = set()

        def walk(node) -> None:
            if isinstance(node, PhysicalScan) and not catalog.is_system_table(
                node.table.name
            ):
                names.add(node.table.name)
            for child in node.children:
                walk(child)

        walk(plan)
        return tuple(sorted(names))

    def _system_scan_rows(self, plan) -> dict[str, list[tuple]]:
        """Materialize provider rows for every system table the plan scans."""
        catalog = self._cluster.catalog
        systables = self._cluster.systables
        out: dict[str, list[tuple]] = {}
        if systables is None:
            return out

        def walk(node) -> None:
            if isinstance(node, PhysicalScan):
                name = node.table.name
                if catalog.is_system_table(name) and name not in out:
                    out[name] = systables.rows(name)
            for child in node.children:
                walk(child)

        walk(plan)
        return out

    def _explain(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            logical = self._binder.bind_select(statement.query)
            physical = self._planner.plan(logical)
            header = f"Executor: {self._executor_kind}"
            if self._executor_kind == "parallel":
                header += f" (parallelism {self.effective_parallelism()})"
            lines = [header] + explain(physical).splitlines()
            return QueryResult(
                columns=["QUERY PLAN"],
                rows=[(line,) for line in lines],
                rowcount=len(lines),
                command="EXPLAIN",
            )
        raise AnalysisError("EXPLAIN supports only SELECT statements")

    def _explain_analyze(
        self, statement: ast.SelectStatement, xid: int
    ) -> QueryResult:
        """Run the query and render the plan with per-step actuals inline.

        The per-operator hooks live in the interpreted and vectorized
        executors; the compiled executor fuses pipelines and reports only
        the steps it drives, so a compiled session's EXPLAIN ANALYZE runs
        through the volcano path for a complete per-step report. A
        vectorized session keeps its own executor (and so also reports
        block-decode cache traffic); a parallel session keeps its own
        executor too and annotates fused steps with their degree of
        parallelism (``workers=... morsels=...``).
        """
        previous = self._executor_kind
        if previous == "compiled":
            self._executor_kind = "volcano"
        try:
            result = self._run_select(statement.query, xid)
        finally:
            self._executor_kind = previous
        lines = _annotate_plan(result.stats.plan_text, result.stats.operators)
        scan = result.stats.scan
        if scan.cache_hits or scan.cache_misses:
            lines.append(
                f"Block decode cache: {scan.cache_hits} hits, "
                f"{scan.cache_misses} misses"
            )
        if scan.encoding:
            from repro.exec.encoded import PUSHDOWN_KIND

            kinds = sorted(
                {PUSHDOWN_KIND.get(codec, codec) for codec in scan.encoding}
            )
            lines.append(
                f"Encoded scan: {scan.encoded_batches} batches, "
                f"{scan.decode_bytes_avoided} decode bytes avoided "
                f"({', '.join(kinds)})"
            )
        if result.stats.result_cache_status == "hit":
            lines.append("Result cache: hit (execution skipped)")
        elif result.stats.result_cache_status == "miss":
            lines.append("Result cache: miss (result stored)")
        if result.stats.segment_cache_hits or result.stats.segment_cache_misses:
            lines.append(
                f"Segment cache: {result.stats.segment_cache_hits} hits, "
                f"{result.stats.segment_cache_misses} misses"
            )
        lines.append(
            f"Total runtime: {result.stats.execute_seconds * 1000.0:.3f} ms"
            f" ({result.rowcount} rows)"
        )
        return QueryResult(
            columns=["QUERY PLAN"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
            stats=result.stats,
            command="EXPLAIN",
        )

    # ---- DDL -----------------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTableStatement) -> QueryResult:
        if statement.if_not_exists and self._cluster.catalog.has_table(
            statement.name
        ):
            return QueryResult(command="CREATE TABLE")
        columns = [
            ColumnInfo(
                name=c.name,
                sql_type=type_from_name(c.type_name, *c.type_params),
                encode=c.encode,
                not_null=c.not_null,
            )
            for c in statement.columns
        ]
        info = TableInfo(
            name=statement.name,
            columns=columns,
            distribution=make_distribution(statement.diststyle, statement.distkey),
            sort_key=self._make_sort_key(
                statement.sortkey, statement.sortkey_interleaved
            ),
        )
        self._validate_table(info, statement.distkey, statement.sortkey)
        self._cluster.catalog.create_table(info)
        self._cluster.create_table_storage(info)
        return QueryResult(command="CREATE TABLE")

    @staticmethod
    def _make_sort_key(columns: list[str], interleaved: bool):
        if not columns:
            return None
        from repro.sortkeys.compound import CompoundSortKey
        from repro.sortkeys.interleaved import InterleavedSortKey

        if interleaved:
            return InterleavedSortKey(columns)
        return CompoundSortKey(columns)

    @staticmethod
    def _validate_table(
        info: TableInfo, distkey: str | None, sortkey: list[str]
    ) -> None:
        if distkey is not None:
            info.column(distkey)  # raises if missing
        for name in sortkey:
            info.column(name)

    def _create_table_as(
        self, statement: ast.CreateTableAsStatement, xid: int
    ) -> QueryResult:
        result = self._run_select(statement.query, xid)
        logical = self._binder.bind_select(statement.query)
        columns = [
            ColumnInfo(name=c.name, sql_type=_storable_type(c.sql_type))
            for c in logical.output
        ]
        info = TableInfo(
            name=statement.name,
            columns=columns,
            distribution=make_distribution(statement.diststyle, statement.distkey),
            sort_key=self._make_sort_key(statement.sortkey, False),
        )
        self._validate_table(info, statement.distkey, statement.sortkey)
        self._cluster.catalog.create_table(info)
        self._cluster.create_table_storage(info)
        count = self._cluster.distribute_rows(info, result.rows, xid)
        self._cluster.seal_table(info.name)
        self._update_statistics(info, xid)
        return QueryResult(rowcount=count, command="CREATE TABLE AS")

    def _drop_table(self, statement: ast.DropTableStatement) -> QueryResult:
        if statement.if_exists and not self._cluster.catalog.has_table(
            statement.name
        ):
            return QueryResult(command="DROP TABLE")
        self._cluster.catalog.drop_table(statement.name)
        self._cluster.drop_table_storage(statement.name)
        return QueryResult(command="DROP TABLE")

    # ---- DML ------------------------------------------------------------------------------

    def _require_user_table(self, name: str, operation: str) -> TableInfo:
        """System tables are read-only: writes resolve here first."""
        if self._cluster.catalog.is_system_table(name):
            raise AnalysisError(
                f"{operation} is not allowed on system table {name!r}"
            )
        return self._cluster.catalog.table(name)

    def _insert(self, statement: ast.InsertStatement, xid: int) -> QueryResult:
        table = self._require_user_table(statement.table, "INSERT")
        target_columns = statement.columns or table.column_names
        for name in target_columns:
            table.column(name)
        if statement.query is not None:
            source_rows = self._run_select(statement.query, xid).rows
        else:
            source_rows = []
            for row_exprs in statement.rows:
                if len(row_exprs) != len(target_columns):
                    raise AnalysisError(
                        f"INSERT has {len(row_exprs)} values for "
                        f"{len(target_columns)} columns"
                    )
                evaluated = []
                for expr in row_exprs:
                    fn = compile_expression(
                        expr, _reject_column_refs
                    )
                    evaluated.append(fn(()))
                source_rows.append(tuple(evaluated))
        rows = [
            self._align_insert_row(table, target_columns, row)
            for row in source_rows
        ]
        count = self._cluster.distribute_rows(table, rows, xid)
        self._mark_stats_stale(table, count)
        return QueryResult(rowcount=count, command="INSERT")

    @staticmethod
    def _align_insert_row(
        table: TableInfo, target_columns: list[str], row: tuple
    ) -> tuple:
        if len(row) != len(target_columns):
            raise DataError(
                f"INSERT row has {len(row)} values for "
                f"{len(target_columns)} columns"
            )
        by_name = dict(zip(target_columns, row))
        return tuple(by_name.get(c.name) for c in table.columns)

    def _matching_offsets(
        self, table: TableInfo, where: ast.Expression | None, xid: int
    ) -> list[tuple[int, list[int], list[tuple]]]:
        """Per-slice (slice index, row offsets, row tuples) matching WHERE."""
        snapshot = self._cluster.transactions.snapshot(xid)
        predicate = None
        if where is not None:
            from repro.sql.subqueries import expand_in_expression

            where = expand_in_expression(
                where, lambda inner: self._run_select(inner, xid).rows
            )
            scope_plan = self._binder.bind_select(
                ast.SelectQuery(
                    items=[ast.SelectItem(ast.Star())],
                    from_item=ast.TableRef(table.name),
                    where=where,
                )
            )
            # The bound filter sits under the projection.
            condition = scope_plan.child.condition  # type: ignore[union-attr]
            predicate = compile_expression(condition, _reject_column_refs)
        results = []
        dist_all = table.distribution.style is DistStyle.ALL
        for index, store in enumerate(self._cluster.slice_stores):
            if not store.has_shard(table.name):
                continue
            shard = store.shard(table.name)
            columns = [shard.chain(c.name).read_all() for c in table.columns]
            offsets: list[int] = []
            rows: list[tuple] = []
            for offset in range(shard.row_count):
                if not snapshot.can_see(
                    shard.insert_xids[offset], shard.delete_xids[offset]
                ):
                    continue
                row = tuple(col[offset] for col in columns)
                if predicate is None or predicate(row) is True:
                    offsets.append(offset)
                    rows.append(row)
            results.append((index, offsets, rows))
        return results

    def _delete(self, statement: ast.DeleteStatement, xid: int) -> QueryResult:
        table = self._require_user_table(statement.table, "DELETE")
        # DELETE never routes through distribute_rows, so register the
        # write here (commit/rollback re-bump the table's epoch).
        self._cluster.transactions.record_write(xid, table.name)
        count = 0
        logical_rows = 0
        # Match and mark under the storage lock: a concurrent VACUUM
        # rewrite between the two would shuffle the offsets out from
        # under the delete markers.
        with self._cluster.storage_lock:
            matches = self._matching_offsets(table, statement.where, xid)
            for slice_index, offsets, _rows in matches:
                store = self._cluster.slice_stores[slice_index]
                shard = store.shard(table.name)
                shard.mark_deleted(offsets, xid)
                for offset in offsets:
                    self._cluster.transactions.record_delete(
                        xid, table.name, store.slice_id, offset
                    )
                count += len(offsets)
        if table.distribution.style is DistStyle.ALL:
            slice_count = max(1, self._cluster.slice_count)
            logical_rows = count // slice_count
        else:
            logical_rows = count
        self._mark_stats_stale(table, -logical_rows)
        return QueryResult(rowcount=logical_rows, command="DELETE")

    def _update(self, statement: ast.UpdateStatement, xid: int) -> QueryResult:
        table = self._require_user_table(statement.table, "UPDATE")
        from repro.sql.subqueries import expand_in_expression

        assignment_fns = []
        scope = _table_scope(self._binder, table)
        for column_name, expr in statement.assignments:
            table.column(column_name)
            expr = expand_in_expression(
                expr, lambda inner: self._run_select(inner, xid).rows
            )
            bound = self._binder._bind_expr(expr, scope, allow_aggregates=False)
            assignment_fns.append(
                (table.column_index(column_name), compile_expression(bound, _reject_column_refs))
            )
        new_rows: list[tuple] = []
        count = 0
        seen_logical = table.distribution.style is not DistStyle.ALL
        # Delete-then-reinsert is atomic against other storage mutators
        # (the lock is reentrant, so the nested distribute_rows is fine).
        with self._cluster.storage_lock:
            matches = self._matching_offsets(table, statement.where, xid)
            for slice_index, offsets, rows in matches:
                store = self._cluster.slice_stores[slice_index]
                shard = store.shard(table.name)
                shard.mark_deleted(offsets, xid)
                for offset in offsets:
                    self._cluster.transactions.record_delete(
                        xid, table.name, store.slice_id, offset
                    )
                if seen_logical or not new_rows:
                    for row in rows:
                        updated = list(row)
                        for index, fn in assignment_fns:
                            updated[index] = fn(row)
                        new_rows.append(tuple(updated))
                count += len(offsets)
            self._cluster.distribute_rows(table, new_rows, xid)
        self._mark_stats_stale(table)
        logical = (
            len(new_rows)
            if table.distribution.style is DistStyle.ALL
            else count
        )
        return QueryResult(rowcount=logical, command="UPDATE")

    # ---- COPY ------------------------------------------------------------------------------

    def _copy(self, statement: ast.CopyStatement, xid: int) -> QueryResult:
        table = self._require_user_table(statement.table, "COPY")
        target_columns = statement.columns or table.column_names
        for name in target_columns:
            table.column(name)
        delimiter = str(statement.options.get("delimiter", "|"))
        null_marker = str(statement.options.get("null", ""))
        use_json = bool(statement.options.get("json", False))
        lines = self._cluster.open_source(statement.source)

        types = [table.column(name).sql_type for name in target_columns]
        rows: list[tuple] = []
        for line_number, line in enumerate(lines, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                if use_json:
                    rows.append(
                        _parse_json_row(line, table, target_columns)
                    )
                else:
                    fields = line.split(delimiter)
                    if len(fields) != len(target_columns):
                        raise CopyError(
                            f"line {line_number}: expected "
                            f"{len(target_columns)} fields, got {len(fields)}"
                        )
                    rows.append(
                        tuple(
                            parse_literal(text, sql_type, null_marker)
                            for text, sql_type in zip(fields, types)
                        )
                    )
            except DataError as exc:
                raise CopyError(f"line {line_number}: {exc}") from exc

        aligned = [
            self._align_insert_row(table, target_columns, row) for row in rows
        ]

        # Automatic compression: on by default for the first load into an
        # empty table — the paper's flagship dusty knob (§2.1, §3.3).
        compupdate = statement.options.get("compupdate")
        was_empty = table.statistics.row_count == 0
        if aligned and was_empty and compupdate is not False:
            self._apply_auto_compression(table, aligned)

        count = self._cluster.distribute_rows(table, aligned, xid)
        # COPY "sorts locally" (§2.1) for the initial load of a sorted
        # table; later loads append unsorted and VACUUM restores order —
        # rewriting every block on every load would defeat incremental
        # backup.
        if table.sort_key is not None and was_empty:
            self._sort_table(table, xid)
        self._cluster.seal_table(table.name)
        # COPY runs the ANALYZE path with the load (STATUPDATE, on by
        # default) — bulk loads leave fresh statistics behind.
        if statement.options.get("statupdate") is not False:
            self._update_statistics(table, xid)
        else:
            self._mark_stats_stale(table, count)
        return QueryResult(rowcount=count, command="COPY")

    def _apply_auto_compression(
        self, table: TableInfo, rows: list[tuple]
    ) -> None:
        analyzer = CompressionAnalyzer()
        vectors = list(zip(*rows)) if rows else [[] for _ in table.columns]
        analyses = analyzer.analyze(table.column_specs, vectors)
        for column in table.columns:
            if column.encode is not None:
                continue  # user-specified ENCODE stays authoritative
            chosen = analyses[column.name].chosen_codec
            column.encode = chosen
            for store in self._cluster.slice_stores:
                if store.has_shard(table.name):
                    store.shard(table.name).chain(column.name).set_codec(chosen)

    # ---- ANALYZE / VACUUM -------------------------------------------------------------------

    def _analyze(self, statement: ast.AnalyzeStatement, xid: int) -> QueryResult:
        names = (
            [statement.table]
            if statement.table
            else self._cluster.catalog.table_names()
        )
        if statement.compression:
            if not statement.table:
                raise AnalysisError("ANALYZE COMPRESSION requires a table name")
            return self._analyze_compression(names[0])
        for name in names:
            self._update_statistics(self._cluster.catalog.table(name))
        return QueryResult(command="ANALYZE")

    def _analyze_compression(self, table_name: str) -> QueryResult:
        table = self._cluster.catalog.table(table_name)
        analyzer = CompressionAnalyzer()
        vectors = []
        for column in table.columns:
            values: list[object] = []
            for store in self._cluster.slice_stores:
                if store.has_shard(table.name):
                    values.extend(
                        store.shard(table.name).chain(column.name).read_all()
                    )
            vectors.append(values)
        analyses = analyzer.analyze(table.column_specs, vectors)
        rows = [
            (
                column.name,
                analyses[column.name].chosen_codec,
                round(
                    analyses[column.name]
                    .trial(analyses[column.name].chosen_codec)
                    .ratio_vs_raw,
                    2,
                ),
            )
            for column in table.columns
        ]
        return QueryResult(
            columns=["column", "encoding", "est_reduction_ratio"],
            rows=rows,
            rowcount=len(rows),
            command="ANALYZE COMPRESSION",
        )

    def _vacuum(self, statement: ast.VacuumStatement, xid: int) -> QueryResult:
        names = (
            [statement.table]
            if statement.table
            else self._cluster.catalog.table_names()
        )
        for name in names:
            table = self._cluster.catalog.table(name)
            self._sort_table(table, xid, reclaim=True)
            # VACUUM rewrites blocks (row count is unchanged but dead rows
            # are gone); statistics need a fresh ANALYZE afterwards.
            self._mark_stats_stale(table)
        return QueryResult(command="VACUUM")

    def _sort_table(
        self, table: TableInfo, xid: int, reclaim: bool = False
    ) -> None:
        """Per-slice sort (and, for VACUUM, dead-row reclamation)."""
        self._cluster.transactions.record_write(xid, table.name)
        snapshot = self._cluster.transactions.snapshot(xid)
        sort_key = table.sort_key
        # The rewrite replaces whole shards; the storage lock keeps
        # concurrent DML off the table while offsets are reshuffled.
        with self._cluster.storage_lock:
            for store in self._cluster.slice_stores:
                if not store.has_shard(table.name):
                    continue
                shard = store.shard(table.name)
                if shard.row_count == 0:
                    continue
                visible = [
                    offset
                    for offset in range(shard.row_count)
                    if snapshot.can_see(
                        shard.insert_xids[offset], shard.delete_xids[offset]
                    )
                ]
                if not reclaim and len(visible) != shard.row_count:
                    # COPY-time sorting never drops rows others might see.
                    continue
                if sort_key is not None:
                    key_vectors = []
                    for column in sort_key.columns:
                        values = shard.chain(column).read_all()
                        key_vectors.append([values[i] for i in visible])
                    order_local = sort_key.sort_order(key_vectors)
                    order = [visible[i] for i in order_local]
                else:
                    order = visible
                shard.rewrite_sorted(order, BOOTSTRAP_XID)

    # ---- statistics -------------------------------------------------------------------------

    def _mark_stats_stale(self, table: TableInfo, delta_rows: int = 0) -> None:
        """DML invalidates statistics without rescanning the table.

        The row count tracks the mutation incrementally so size-based
        planning stays sane, but column statistics (min/max/NDV/nulls)
        are stale until the next ANALYZE or COPY-with-STATUPDATE — the
        planner falls back to its heuristics meanwhile.
        """
        stats = table.statistics
        stats.stale = True
        if delta_rows:
            stats.row_count = max(0, stats.row_count + delta_rows)

    def _update_statistics(self, table: TableInfo, xid: int | None = None) -> None:
        """Refresh optimizer statistics by scanning (ANALYZE / on-load).

        When called mid-statement, *xid* makes the writing transaction's
        own rows visible to the scan (the commit follows immediately).
        """
        if xid is not None:
            snapshot = self._cluster.transactions.snapshot(xid)
        else:
            snapshot = self._cluster.transactions.snapshot_latest()
        stats = TableStatistics(stale=False)
        dist_all = table.distribution.style is DistStyle.ALL
        hlls = {c.name: HyperLogLog(10) for c in table.columns}
        lows: dict[str, object] = {}
        highs: dict[str, object] = {}
        nulls: dict[str, int] = {c.name: 0 for c in table.columns}
        row_count = 0
        for store in self._cluster.slice_stores:
            if not store.has_shard(table.name):
                continue
            shard = store.shard(table.name)
            visible = [
                offset
                for offset in range(shard.row_count)
                if snapshot.can_see(
                    shard.insert_xids[offset], shard.delete_xids[offset]
                )
            ]
            row_count += len(visible)
            for column in table.columns:
                values = shard.chain(column.name).read_all()
                hll = hlls[column.name]
                for offset in visible:
                    value = values[offset]
                    if value is None:
                        nulls[column.name] += 1
                        continue
                    hll.add(value)
                    low = lows.get(column.name)
                    if low is None or value < low:
                        lows[column.name] = value
                    high = highs.get(column.name)
                    if high is None or value > high:
                        highs[column.name] = value
            stats.total_bytes += shard.encoded_bytes
            if dist_all:
                break  # one replica carries every logical row
        stats.row_count = row_count
        for column in table.columns:
            stats.columns[column.name] = ColumnStatistics(
                low=lows.get(column.name),
                high=highs.get(column.name),
                null_fraction=(
                    nulls[column.name] / row_count if row_count else 0.0
                ),
                distinct_count=hlls[column.name].cardinality(),
            )
        table.statistics = stats


def _annotate_plan(plan_text: str, operators) -> list[str]:
    """Append per-step actuals to the EXPLAIN text's "XN" lines.

    ``explain()`` renders nodes in preorder and ``assign_steps`` numbers
    them the same way, so the k-th "XN" line is plan step k.
    """
    by_step = {op.step: op for op in operators}
    lines: list[str] = []
    step = 0
    for line in plan_text.splitlines():
        if line.lstrip().startswith("XN "):
            op = by_step.get(step)
            if op is None:
                line += " (never executed)"
            else:
                extra = (
                    f" (actual rows={op.rows} est={op.est_rows:.0f}"
                    f" elapsed_us={op.elapsed_us}"
                )
                if op.blocks_read or op.blocks_skipped:
                    extra += (
                        f" blocks_read={op.blocks_read}"
                        f" blocks_skipped={op.blocks_skipped}"
                    )
                if op.cache_hits or op.cache_misses:
                    extra += (
                        f" cache_hits={op.cache_hits}"
                        f" cache_misses={op.cache_misses}"
                    )
                if op.encoded_batches:
                    extra += (
                        f" encoded_batches={op.encoded_batches}"
                        f" decode_saved={op.decode_bytes_avoided}B"
                    )
                if op.workers:
                    extra += f" workers={op.workers} morsels={op.morsels}"
                if op.spilled_bytes:
                    extra += (
                        f" spill={op.spilled_bytes}B"
                        f" spill_partitions={op.spill_partitions}"
                    )
                line += extra + ")"
            step += 1
        lines.append(line)
    return lines


def _reject_column_refs(ref: ast.ColumnRef) -> int:
    raise AnalysisError(f"column reference {ref.to_sql()!r} is not allowed here")


def _table_scope(binder: Binder, table: TableInfo):
    from repro.plan.binder import _Scope, _ScopeColumn

    return _Scope(
        [
            _ScopeColumn(table.name, c.name, c.sql_type, i)
            for i, c in enumerate(table.columns)
        ]
    )


def _storable_type(sql_type):
    """CTAS output columns keep their inferred type."""
    return sql_type


def _parse_json_row(
    line: str, table: TableInfo, target_columns: list[str]
) -> tuple:
    """COPY ... JSON: one object per line, keys matched to column names."""
    import json

    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CopyError(f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise CopyError("JSON COPY expects one object per line")
    # Accept keys that sanitize to a column name ("user id" -> user_id),
    # matching the relationalizer's identifier rules.
    from repro.engine.relationalize import _sanitize

    obj = {_sanitize(str(k)): v for k, v in obj.items()}
    values = []
    for name in target_columns:
        sql_type = table.column(name).sql_type
        raw = obj.get(name)
        if isinstance(raw, (dict, list)):
            # Nested structures load as their JSON text (the
            # relationalizer types such columns varchar).
            raw = json.dumps(raw)
        if raw is None:
            values.append(None)
        elif isinstance(raw, str) and not sql_type.is_character:
            values.append(parse_literal(raw, sql_type))
        elif isinstance(raw, float) and sql_type.is_integer and raw.is_integer():
            values.append(int(raw))
        else:
            values.append(sql_type.validate(raw))
    return tuple(values)
