"""System catalog: table definitions and optimizer statistics.

The catalog lives on the leader node. Statistics are refreshed by ANALYZE
and automatically on COPY ("optimizer statistics are updated with load",
paper §2.1) and drive join sizing, the broadcast-vs-redistribute choice
and EXPLAIN row estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.types import SqlType
from repro.distribution.diststyle import Distribution, EvenDistribution
from repro.errors import (
    AnalysisError,
    ColumnNotFoundError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from repro.sortkeys.compound import CompoundSortKey
from repro.sortkeys.interleaved import InterleavedSortKey


@dataclass
class ColumnInfo:
    """One column's definition."""

    name: str
    sql_type: SqlType
    encode: str | None = None  # None = analyzer picks on first load
    not_null: bool = False


@dataclass
class ColumnStatistics:
    """Optimizer statistics for one column."""

    low: object | None = None
    high: object | None = None
    null_fraction: float = 0.0
    distinct_count: int = 0


@dataclass
class TableStatistics:
    """Optimizer statistics for one table."""

    row_count: int = 0
    total_bytes: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    stale: bool = True


@dataclass
class TableInfo:
    """Catalog entry for one user table."""

    name: str
    columns: list[ColumnInfo]
    distribution: Distribution = field(default_factory=EvenDistribution)
    sort_key: CompoundSortKey | InterleavedSortKey | None = None
    statistics: TableStatistics = field(default_factory=TableStatistics)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def column_specs(self) -> list[tuple[str, SqlType]]:
        return [(c.name, c.sql_type) for c in self.columns]

    def column(self, name: str) -> ColumnInfo:
        for c in self.columns:
            if c.name == name:
                return c
        raise ColumnNotFoundError(name, self.name)

    def column_index(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise ColumnNotFoundError(name, self.name)

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_byte_width(self) -> int:
        """Nominal uncompressed bytes per row, used by network accounting."""
        return sum(c.sql_type.byte_width for c in self.columns)


class Catalog:
    """Name → :class:`TableInfo` map with DDL-level integrity checks.

    System tables (``stl_*``/``stv_*``/``svl_*``) register through
    :meth:`register_system_table` into a separate namespace: they resolve
    through :meth:`table` like any relation — so the binder and planner
    need no special cases — but stay invisible to :meth:`table_names`,
    which drives whole-catalog maintenance (ANALYZE/VACUUM without a
    table, resize) that must only touch user storage.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableInfo] = {}
        self._system_tables: dict[str, TableInfo] = {}

    def register_system_table(self, info: TableInfo) -> None:
        self._system_tables[info.name] = info

    def is_system_table(self, name: str) -> bool:
        return name in self._system_tables

    def system_table_names(self) -> list[str]:
        return sorted(self._system_tables)

    def create_table(self, info: TableInfo) -> None:
        if info.name in self._system_tables:
            raise TableAlreadyExistsError(
                f"{info.name!r} is a reserved system table name"
            )
        if info.name in self._tables:
            raise TableAlreadyExistsError(info.name)
        seen: set[str] = set()
        for column in info.columns:
            if column.name in seen:
                raise TableAlreadyExistsError(
                    f"duplicate column {column.name!r} in table {info.name!r}"
                )
            seen.add(column.name)
        self._tables[info.name] = info

    def drop_table(self, name: str) -> TableInfo:
        info = self._tables.pop(name, None)
        if info is None:
            if name in self._system_tables:
                raise AnalysisError(f"cannot drop system table {name!r}")
            raise TableNotFoundError(name)
        return info

    def table(self, name: str) -> TableInfo:
        info = self._tables.get(name)
        if info is None:
            info = self._system_tables.get(name)
        if info is None:
            raise TableNotFoundError(name)
        return info

    def has_table(self, name: str) -> bool:
        return name in self._tables or name in self._system_tables

    def table_names(self) -> list[str]:
        """User tables only (system tables never appear here)."""
        return sorted(self._tables)
