"""Simulated interconnect with byte-level accounting.

Nodes and slices are objects in one process, so "the network" is an
accounting device: every broadcast, redistribution and leader gather
records the bytes a real cluster would move. Those counters are the
evidence for the co-location claims (experiment a3): a co-located join
moves zero bytes, a broadcast moves ``build_bytes * (slices - 1)``, a full
redistribution moves nearly everything once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Cumulative interconnect counters for one query or session."""

    bytes_broadcast: int = 0
    bytes_redistributed: int = 0
    bytes_to_leader: int = 0
    messages: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_broadcast + self.bytes_redistributed + self.bytes_to_leader

    def merge(self, other: "NetworkStats") -> None:
        self.bytes_broadcast += other.bytes_broadcast
        self.bytes_redistributed += other.bytes_redistributed
        self.bytes_to_leader += other.bytes_to_leader
        self.messages += other.messages


class Interconnect:
    """Accounting for data movement between slices and to the leader.

    The per-query recording calls run from one session's thread against
    that query's private stats object, but :meth:`absorb` folds finished
    queries into the cluster-lifetime counters from many session threads
    at once — that read-modify-write is locked so no bytes are lost.
    """

    def __init__(self) -> None:
        self.stats = NetworkStats()
        self._lock = threading.Lock()

    def absorb(self, other: NetworkStats) -> None:
        """Fold one finished query's counters into the cumulative stats."""
        with self._lock:
            self.stats.merge(other)

    def record_broadcast(self, payload_bytes: int, to_slices: int) -> None:
        """One copy of *payload_bytes* sent to each of *to_slices* slices."""
        self.stats.bytes_broadcast += payload_bytes * to_slices
        self.stats.messages += to_slices

    def record_redistribution(self, payload_bytes: int) -> None:
        """Rows re-hashed to other slices (bytes that actually moved)."""
        self.stats.bytes_redistributed += payload_bytes
        self.stats.messages += 1

    def record_gather(self, payload_bytes: int) -> None:
        """Intermediate results returned to the leader node."""
        self.stats.bytes_to_leader += payload_bytes
        self.stats.messages += 1

    def reset(self) -> NetworkStats:
        """Return current counters and zero them (per-query scoping)."""
        current = self.stats
        self.stats = NetworkStats()
        return current
