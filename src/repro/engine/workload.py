"""Workload capture: which columns queries actually exercise.

"In future, we would like to add automated collection of usage statistics
by feature, query plan shapes, etc. across our fleet" (§5) and "we are
striving to make other settings, such as sort column and distribution key
equally dusty" (§3.3). The session records, from every physical plan, the
columns used as join keys, range/equality predicates and grouping keys —
the signal the tuning advisor consumes.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.plan.physical import (
    PhysicalAggregate,
    PhysicalHashJoin,
    PhysicalNode,
    PhysicalScan,
)
from repro.sql import ast

#: usage kinds recorded per (table, column)
JOIN = "join"
PREDICATE = "predicate"
GROUP = "group"


@dataclass
class WorkloadLog:
    """Cumulative (table, column, kind) usage counters."""

    counts: Counter = field(default_factory=Counter)
    queries_seen: int = 0
    #: Counter increments are read-modify-write; concurrent sessions
    #: record plans from their own threads.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_plan(self, plan: PhysicalNode) -> None:
        with self._lock:
            self.queries_seen += 1
            self._walk(plan)

    # ---- extraction -------------------------------------------------------

    def _walk(self, node: PhysicalNode) -> None:
        if isinstance(node, PhysicalScan):
            for index, _op, _literal in node.zone_predicates:
                self._record(node, index, PREDICATE)
            for conjunct in node.filters:
                for expr in ast.walk_expressions(conjunct):
                    if isinstance(expr, ast.BoundRef):
                        self._record(node, expr.index, PREDICATE)
        elif isinstance(node, PhysicalHashJoin):
            for left_index, right_index in node.keys:
                self._record_through(node.left, left_index, JOIN)
                self._record_through(node.right, right_index, JOIN)
        elif isinstance(node, PhysicalAggregate):
            for expr in node.group_exprs:
                if isinstance(expr, ast.BoundRef):
                    self._record_through(node.child, expr.index, GROUP)
        for child in node.children:
            self._walk(child)

    def _record_through(
        self, node: PhysicalNode, index: int, kind: str
    ) -> None:
        """Attribute an output index to a base-table column when the node
        chain down to the scan preserves it (filters do; projections and
        joins are followed one level where unambiguous)."""
        from repro.plan.physical import PhysicalFilter, PhysicalProject

        while True:
            if isinstance(node, PhysicalScan):
                self._record(node, index, kind)
                return
            if isinstance(node, PhysicalFilter):
                node = node.child
                continue
            if isinstance(node, PhysicalProject):
                if index >= len(node.expressions):
                    return
                expr = node.expressions[index]
                if isinstance(expr, ast.BoundRef):
                    index = expr.index
                    node = node.child
                    continue
                return
            if isinstance(node, PhysicalHashJoin):
                width_left = len(node.left.output)
                if index < width_left:
                    node = node.left
                else:
                    index -= width_left
                    node = node.right
                continue
            return  # aggregates etc.: attribution stops

    def _record(self, scan: PhysicalScan, index: int, kind: str) -> None:
        if not 0 <= index < len(scan.column_indexes):
            return
        column = scan.table.columns[scan.column_indexes[index]].name
        self.counts[(scan.table.name, column, kind)] += 1

    # ---- queries -------------------------------------------------------------

    def usage(self, table: str, kind: str) -> list[tuple[str, int]]:
        """Columns of *table* used as *kind*, most-used first."""
        items = [
            (column, count)
            for (t, column, k), count in self.counts.items()
            if t == table and k == kind
        ]
        return sorted(items, key=lambda kv: (-kv[1], kv[0]))
