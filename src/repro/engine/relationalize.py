"""Automatic relationalization of semi-structured data.

§4 names this as the simplification frontier for the "dark data" use
case: "we could support transient data warehouses on a source 'data lake'
or automatically 'relationalizing' source semi-structured data into
tables for efficient query execution."

:func:`infer_schema` samples JSON records and derives a typed relational
schema (integer widths, varchar lengths, date/timestamp detection,
nullability); :func:`relationalize` creates the table and loads the full
source through COPY ... JSON — one call from a pile of JSON lines to a
queryable, compressed, distributed table.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.engine.cluster import Cluster
from repro.errors import CopyError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_TIMESTAMP_RE = re.compile(r"^\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2})?(\.\d+)?$")

_INT32_MIN, _INT32_MAX = -(2 ** 31), 2 ** 31 - 1


@dataclass
class InferredColumn:
    """Evolving view of one JSON key across the sample."""

    name: str
    first_seen: int
    kind: str = "unknown"  # unknown|boolean|int|bigint|double|date|timestamp|varchar
    max_length: int = 1
    saw_null: bool = False
    present: int = 0

    def observe(self, value: object) -> None:
        self.present += 1
        if value is None:
            self.saw_null = True
            return
        self.kind = _merge_kind(self.kind, _classify(value))
        if isinstance(value, str):
            self.max_length = max(self.max_length, len(value))

    def sql_type_name(self) -> str:
        if self.kind == "boolean":
            return "boolean"
        if self.kind == "int":
            return "int"
        if self.kind == "bigint":
            return "bigint"
        if self.kind == "double":
            return "double precision"
        if self.kind == "date":
            return "date"
        if self.kind == "timestamp":
            return "timestamp"
        # Unknown (all nulls) and text both land on varchar, sized to the
        # next power of two so small outliers don't force re-DDL.
        length = 1
        while length < max(1, self.max_length):
            length *= 2
        return f"varchar({max(4, length)})"


def _classify(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "int" if _INT32_MIN <= value <= _INT32_MAX else "bigint"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        if _DATE_RE.match(value):
            return "date"
        if _TIMESTAMP_RE.match(value):
            return "timestamp"
        return "varchar"
    # Nested objects/arrays stay as their JSON text.
    return "varchar"


#: type-widening lattice: observed kinds merge to the narrowest common type
_WIDENINGS = {
    frozenset(("int", "bigint")): "bigint",
    frozenset(("int", "double")): "double",
    frozenset(("bigint", "double")): "double",
    frozenset(("date", "timestamp")): "timestamp",
}


def _merge_kind(current: str, observed: str) -> str:
    if current in ("unknown", observed):
        return observed
    widened = _WIDENINGS.get(frozenset((current, observed)))
    if widened is not None:
        return widened
    return "varchar"  # incompatible kinds: fall back to text


@dataclass
class InferredSchema:
    """Result of sampling a semi-structured source."""

    table_name: str
    columns: list[InferredColumn]
    records_sampled: int

    def create_table_sql(
        self, diststyle: str = "", sortkey: str = ""
    ) -> str:
        defs = ", ".join(
            f"{c.name} {c.sql_type_name()}" for c in self.columns
        )
        out = f"CREATE TABLE {self.table_name} ({defs})"
        if diststyle:
            out += f" {diststyle}"
        if sortkey:
            out += f" SORTKEY({sortkey})"
        return out


def infer_schema(
    lines, table_name: str, sample_size: int = 1000
) -> InferredSchema:
    """Sample JSON lines and derive a relational schema.

    Keys are ordered by first appearance; keys absent from some records
    are nullable (all columns are nullable — JSON has no NOT NULL).
    Non-object lines raise :class:`CopyError` with the line number.
    """
    columns: dict[str, InferredColumn] = {}
    sampled = 0
    for line_number, line in enumerate(lines, start=1):
        if sampled >= sample_size:
            break
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CopyError(f"line {line_number}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise CopyError(
                f"line {line_number}: expected a JSON object, got "
                f"{type(record).__name__}"
            )
        sampled += 1
        for key, value in record.items():
            name = _sanitize(key)
            column = columns.get(name)
            if column is None:
                column = InferredColumn(name=name, first_seen=len(columns))
                columns[name] = column
            column.observe(
                json.dumps(value)
                if isinstance(value, (dict, list))
                else value
            )
    if not columns:
        raise CopyError("no records to infer a schema from")
    ordered = sorted(columns.values(), key=lambda c: c.first_seen)
    return InferredSchema(
        table_name=table_name, columns=ordered, records_sampled=sampled
    )


def _sanitize(key: str) -> str:
    """JSON keys become SQL identifiers: lowercase, non-word chars -> _,
    reserved words suffixed (``when`` -> ``when_``)."""
    from repro.sql.lexer import KEYWORDS

    name = re.sub(r"\W", "_", key.strip().lower())
    if not name or name[0].isdigit():
        name = f"c_{name}"
    if name in KEYWORDS:
        name = f"{name}_"
    return name


def relationalize(
    cluster: Cluster,
    session,
    table_name: str,
    source_uri: str,
    sample_size: int = 1000,
    diststyle: str = "",
    sortkey: str = "",
) -> InferredSchema:
    """One call from JSON lines to a queryable table.

    Samples the source, creates the inferred table (with optional
    distribution/sort clauses) and COPYes the full source as JSON.
    """
    schema = infer_schema(
        cluster.open_source(source_uri), table_name, sample_size
    )
    session.execute(schema.create_table_sql(diststyle, sortkey))
    session.execute(f"COPY {table_name} FROM '{source_uri}' JSON")
    return schema
