"""Table health introspection.

Feeds the automatic-maintenance daemon (§3.2's future work: "The database
should be able to determine when data access performance is degrading and
take action to correct itself when load is otherwise light"). Health is
the two quantities VACUUM fixes: dead rows occupying blocks, and rows
appended after the sorted region (which defeat zone-map pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cluster import Cluster


@dataclass(frozen=True)
class TableHealth:
    """Degradation metrics for one table, aggregated over slices."""

    table_name: str
    total_rows: int
    dead_rows: int
    unsorted_rows: int
    has_sort_key: bool

    @property
    def dead_fraction(self) -> float:
        return self.dead_rows / self.total_rows if self.total_rows else 0.0

    @property
    def unsorted_fraction(self) -> float:
        if not self.has_sort_key or not self.total_rows:
            return 0.0
        return self.unsorted_rows / self.total_rows


def table_health(cluster: Cluster, table_name: str) -> TableHealth:
    """Measure one table's health across every slice."""
    info = cluster.catalog.table(table_name)
    total = dead = unsorted = 0
    for store in cluster.slice_stores:
        if not store.has_shard(table_name):
            continue
        shard = store.shard(table_name)
        total += shard.row_count
        dead += sum(
            1
            for xid in shard.delete_xids
            if xid is not None and cluster.transactions.is_committed(xid)
        )
        unsorted += max(0, shard.row_count - shard.sorted_prefix)
    return TableHealth(
        table_name=table_name,
        total_rows=total,
        dead_rows=dead,
        unsorted_rows=unsorted,
        has_sort_key=info.sort_key is not None,
    )


def cluster_health(cluster: Cluster) -> list[TableHealth]:
    """Health of every table, worst degradation first."""
    reports = [
        table_health(cluster, name) for name in cluster.catalog.table_names()
    ]
    return sorted(
        reports,
        key=lambda h: max(h.dead_fraction, h.unsorted_fraction),
        reverse=True,
    )
