"""Cluster topology: leader node, compute nodes, slices.

"An Amazon Redshift cluster is comprised of a leader node and one or more
compute nodes... A compute node is partitioned into slices; one slice for
each core" (paper §2.1). The cluster owns the catalog, the transaction
manager, the interconnect, and the slice storage; Sessions drive SQL
through it.

COPY data sources are pluggable: the cloud layer registers an ``s3://``
provider, tests and examples register in-memory sources. Each provider
maps a source URI to an iterable of text lines.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.distribution.diststyle import DistStyle
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.network import Interconnect
from repro.engine.transactions import TransactionManager
from repro.errors import CopyError, DataError, TableNotFoundError
from repro.storage.block import BLOCK_CAPACITY_DEFAULT
from repro.storage.disk import SimulatedDisk
from repro.storage.slicestore import SliceStorage

#: source URI prefix -> provider(uri) -> iterable of text lines
SourceProvider = Callable[[str], Iterable[str]]


@dataclass
class Slice:
    """One unit of parallelism: a core's share of memory and disk."""

    slice_id: str
    node_id: str
    storage: SliceStorage


class ComputeNode:
    """One compute node holding ``slices_per_node`` slices."""

    def __init__(
        self,
        node_id: str,
        slices_per_node: int,
        block_capacity: int,
        disk_capacity_bytes: int | None = None,
    ):
        self.node_id = node_id
        self.slices: list[Slice] = []
        for i in range(slices_per_node):
            slice_id = f"{node_id}-s{i}"
            disk = SimulatedDisk(f"{slice_id}-disk", disk_capacity_bytes)
            self.slices.append(
                Slice(
                    slice_id=slice_id,
                    node_id=node_id,
                    storage=SliceStorage(slice_id, disk, block_capacity),
                )
            )


class Cluster:
    """A running database cluster (data plane).

    The leader-node responsibilities (parsing, planning, final aggregation,
    transaction serialization) live in :class:`~repro.engine.session.Session`
    and the managers owned here; compute-node work happens against the
    slices' storage.
    """

    #: Default for new sessions' ``enable_result_cache`` — the
    #: parameter-group default in real Redshift. Sessions override it
    #: with ``SET enable_result_cache``; benchmarks flip it off so
    #: repeated queries measure execution, not cache lookups.
    enable_result_cache_default = True
    #: Default for new sessions' ``enable_spill``: memory-governed
    #: queries spill to accounted temp files instead of growing without
    #: bound. (A session with no effective memory limit runs unbounded
    #: either way.)
    enable_spill_default = True
    #: Default for new sessions' ``enable_encoded_scan``: vectorized
    #: scans operate on compressed blocks directly (dict-code masks, RLE
    #: folds, late materialization) where the codec supports it. Off
    #: decodes every block up front.
    enable_encoded_scan_default = True
    #: Default for new sessions' ``enable_cbo``: statistics-driven join
    #: enumeration and operator selection. Off pins written-order
    #: planning (the pre-optimizer behaviour).
    enable_cbo_default = True

    def __init__(
        self,
        node_count: int = 2,
        slices_per_node: int = 2,
        block_capacity: int = BLOCK_CAPACITY_DEFAULT,
        node_type: str = "dw2.large",
        disk_capacity_bytes: int | None = None,
        systable_max_rows: int | None = None,
        memory_bytes: int | None = None,
    ):
        if node_count < 1:
            raise ValueError(f"node_count must be positive, got {node_count}")
        if slices_per_node < 1:
            raise ValueError(
                f"slices_per_node must be positive, got {slices_per_node}"
            )
        self.node_type = node_type
        self.nodes: list[ComputeNode] = [
            ComputeNode(f"node-{i}", slices_per_node, block_capacity,
                        disk_capacity_bytes)
            for i in range(node_count)
        ]
        self.catalog = Catalog()
        self.transactions = TransactionManager()
        self.interconnect = Interconnect()
        from repro.engine.workload import WorkloadLog

        self.workload = WorkloadLog()
        from repro.systables import SystemTables

        #: SQL-queryable telemetry (stl_*/stv_*/svl_*); registers its
        #: schemas into the catalog so sessions resolve them like tables.
        self.systables = SystemTables(self, max_rows_per_table=systable_max_rows)
        from repro.storage.blockcache import BlockDecodeCache

        #: Cluster-wide decoded-block cache; vectorized scans serve
        #: repeat block reads from here (see stv_block_cache).
        self.block_cache = BlockDecodeCache()
        self.block_capacity = block_capacity
        from repro.engine.resultcache import QueryResultCache

        #: Leader-side query result cache: repeat SELECTs over unchanged
        #: tables return their cached rows without execution (see
        #: stv_result_cache; per-session SET enable_result_cache).
        self.result_cache = QueryResultCache()
        from repro.exec.segmentcache import SegmentCache

        #: Compiled-pipeline fragment cache shared by every session's
        #: compiled executor (see svl_compile_cache).
        self.segment_cache = SegmentCache()
        #: Optional inline admission hook (an
        #: :class:`~repro.engine.wlm.AdmissionGate`): consulted before a
        #: SELECT executes, bypassed on result-cache hits.
        self.wlm_gate = None
        #: Query-memory pool in bytes (None: unbounded). With a
        #: :attr:`workload_manager` and a :attr:`wlm_gate` attached,
        #: sessions derive their per-query budget as
        #: ``memory_bytes * memory_per_slot_fraction(gate.queue)``.
        self.memory_bytes = memory_bytes
        #: Optional :class:`~repro.engine.wlm.WorkloadManager` whose queue
        #: configuration prices the per-slot memory share above.
        self.workload_manager = None
        from repro.exec.workers import PoolManager, register_slices

        #: Morsel worker pools for the parallel executor: one cached pool
        #: per cluster, re-forked when storage mutates (see exec.workers).
        self.pool_manager = PoolManager()
        #: Key of this cluster's slice list in the worker-side registry;
        #: registered before any pool forks so children inherit it.
        self.worker_registry_id = register_slices(self.slice_stores)
        self._worker_finalizer = weakref.finalize(
            self, _release_workers, self.pool_manager, self.worker_registry_id
        )
        self._sources: dict[str, SourceProvider] = {}
        self._row_counters: dict[str, int] = {}
        #: Serializes storage mutation (row routing, sealing, VACUUM
        #: rewrites) across concurrent sessions: interleaved appends from
        #: two threads would misalign column chains within a shard.
        #: Reentrant because DML paths nest (UPDATE marks deletes, then
        #: routes replacement rows through distribute_rows).
        self.storage_lock = threading.RLock()
        #: Session ids handed out by :meth:`connect` (stl_query /
        #: stv_sessions join key).
        self._session_ids = itertools.count(1)
        #: The :class:`~repro.server.ClusterServer` fronting this
        #: cluster, if any (feeds the stv_sessions system table).
        self.server = None
        #: Shared fault injector; None until :meth:`attach_faults`.
        self.fault_injector = None
        #: Callable(exc) -> bool set by a RecoveryCoordinator; sessions
        #: consult it before retrying a failed query segment.
        self.recovery_handler: Callable[[Exception], bool] | None = None
        self._read_only_reason: str | None = None

    # ---- fault plumbing & degraded mode ------------------------------------

    def attach_faults(self, injector) -> None:
        """Route this cluster's fault decisions through *injector*: every
        slice disk consults it for media errors, and executors use it for
        node-crash checkpoints."""
        self.fault_injector = injector
        for store in self.slice_stores:
            store.disk.attach_injector(injector)

    @property
    def read_only(self) -> bool:
        return self._read_only_reason is not None

    @property
    def read_only_reason(self) -> str | None:
        return self._read_only_reason

    def set_read_only(self, reason: str) -> None:
        """Degrade to read-only: reads keep working, writes raise.

        The escalator stance — while redundancy is lost the cluster keeps
        answering queries instead of going fully unavailable.
        """
        self._read_only_reason = reason

    def clear_read_only(self) -> None:
        self._read_only_reason = None

    # ---- topology ------------------------------------------------------------

    @property
    def slices(self) -> list[Slice]:
        return [s for node in self.nodes for s in node.slices]

    @property
    def slice_stores(self) -> list[SliceStorage]:
        return [s.storage for s in self.slices]

    @property
    def slice_count(self) -> int:
        return sum(len(node.slices) for node in self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def connect(
        self,
        executor: str = "compiled",
        parallelism: int | None = None,
        pool_mode: str | None = None,
        memory_limit: int | None = None,
        user_name: str = "",
        queue: str = "default",
    ):
        """Open a session (the ODBC/JDBC connection analogue).

        ``parallelism`` and ``pool_mode`` configure the parallel executor
        (``executor="parallel"``): worker count per pipeline, and "fork" /
        "thread" / "serial" (defaults to fork where available).
        ``memory_limit`` caps per-query operator memory in bytes
        (queries over it spill; equivalent to ``SET query_memory_limit``).
        ``user_name`` and ``queue`` tag the session's stl_query rows so
        capture/replay and stv_sessions can join on them.
        """
        from repro.engine.session import Session

        return Session(
            self,
            executor=executor,
            parallelism=parallelism,
            pool_mode=pool_mode,
            memory_limit=memory_limit,
            user_name=user_name,
            queue=queue,
        )

    def close(self) -> None:
        """Shut down worker pools and release the slice registry entry.

        Optional — a garbage-collected cluster cleans up the same way —
        but deterministic shutdown keeps forked workers from outliving
        tests that count processes.
        """
        self._worker_finalizer()

    # ---- storage lifecycle ------------------------------------------------------

    def create_table_storage(self, table: TableInfo) -> None:
        """Create the per-slice shards for a new table."""
        codecs = {
            c.name: (c.encode or "raw") for c in table.columns
        }
        with self.storage_lock:
            for store in self.slice_stores:
                store.create_shard(table.name, table.column_specs, codecs)
            self._row_counters[table.name] = 0

    def drop_table_storage(self, table_name: str) -> None:
        with self.storage_lock:
            for store in self.slice_stores:
                if store.has_shard(table_name):
                    store.drop_shard(table_name)
            self._row_counters.pop(table_name, None)

    def invalidate_statistics(self, table_name: str) -> None:
        """Mark a table's optimizer statistics stale.

        Sessions flip staleness via ``_mark_stats_stale`` on their own
        DML; this is the hook for every path that mutates storage
        *outside* a session — scrub block repair, replica failover,
        restore adoption — so the CBO never keeps trusting NDV/min-max
        measured against bytes that no longer exist.
        """
        try:
            table = self.catalog.table(table_name)
        except TableNotFoundError:
            return
        if table.statistics is not None:
            table.statistics.stale = True

    # ---- row routing -------------------------------------------------------------

    def distribute_rows(
        self,
        table: TableInfo,
        rows: Iterable[Sequence[object]],
        xid: int,
        validate: bool = True,
    ) -> int:
        """Route rows to slices per the table's distribution style.

        Rows are validated against column types and NOT NULL constraints
        unless the caller already validated them.
        """
        # The insert funnel: every INSERT/COPY/CTAS/UPDATE lands here, so
        # this is where the writing transaction learns it touched the
        # table (commit/rollback re-bump its epoch for the result cache).
        self.transactions.record_write(xid, table.name)
        dist = table.distribution
        n = self.slice_count
        key_index: int | None = None
        if dist.style is DistStyle.KEY:
            key_index = table.column_index(dist.column)  # type: ignore[attr-defined]
        buffers: list[list[tuple]] = [[] for _ in range(n)]
        count = 0
        with self.storage_lock:
            counter = self._row_counters.get(table.name, 0)
            for row in rows:
                if validate:
                    row = self._validate_row(table, row)
                key_value = row[key_index] if key_index is not None else None
                for target in dist.target_slices(counter, key_value, n):
                    buffers[target].append(tuple(row))
                counter += 1
                count += 1
            self._row_counters[table.name] = counter
            for store, buffered in zip(self.slice_stores, buffers):
                if buffered:
                    store.shard(table.name).append_rows(buffered, xid)
                    store.disk.record_write(len(buffered) * table.row_byte_width)
        return count

    @staticmethod
    def _validate_row(table: TableInfo, row: Sequence[object]) -> tuple:
        if len(row) != len(table.columns):
            raise DataError(
                f"row has {len(row)} values, table {table.name!r} expects "
                f"{len(table.columns)}"
            )
        out = []
        for column, value in zip(table.columns, row):
            if value is None and column.not_null:
                raise DataError(
                    f"null value in column {column.name!r} violates NOT NULL"
                )
            out.append(column.sql_type.validate(value))
        return tuple(out)

    def seal_table(self, table_name: str) -> None:
        """Seal open tail blocks on every slice (end of a bulk load)."""
        with self.storage_lock:
            for store in self.slice_stores:
                if store.has_shard(table_name):
                    store.shard(table_name).seal()

    # ---- COPY sources ---------------------------------------------------------------

    def register_source(self, prefix: str, provider: SourceProvider) -> None:
        """Register a COPY source provider for URIs starting with *prefix*."""
        self._sources[prefix] = provider

    def register_inline_source(self, uri: str, lines: Sequence[str]) -> None:
        """Convenience: serve a fixed line list for one exact URI."""
        frozen = list(lines)
        self._sources[uri] = lambda requested: iter(frozen)

    def open_source(self, uri: str) -> Iterable[str]:
        """Resolve a COPY source URI to its line stream."""
        best: str | None = None
        for prefix in self._sources:
            if uri.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            raise CopyError(
                f"no COPY source registered for {uri!r} "
                f"(register one with Cluster.register_source)"
            )
        return self._sources[best](uri)

    # ---- introspection -----------------------------------------------------------------

    def table_bytes(self, table_name: str) -> int:
        """Total encoded bytes of a table across all slices."""
        total = 0
        for store in self.slice_stores:
            if store.has_shard(table_name):
                total += store.shard(table_name).encoded_bytes
        return total

    def total_bytes(self) -> int:
        return sum(store.used_bytes for store in self.slice_stores)


def _release_workers(pool_manager, registry_id: int) -> None:
    """Cluster finalizer (must not close over the cluster itself)."""
    from repro.exec.workers import unregister_slices

    pool_manager.close()
    unregister_slices(registry_id)
