"""The tuning advisor: recommending distribution and sort keys.

§3.3: "The main things set by a customer are ... sort and distribution
model used for individual tables ... We are striving to make other
settings, such as sort column and distribution key equally dusty. The
database generally has as much or more information as available to the
customer to set these well, including query patterns, data distribution
and cost of compression."

The advisor combines the captured workload (join/predicate/group usage)
with catalog statistics (row counts, distinct counts) and recommends:

* ``DISTSTYLE ALL`` for small dimension tables that get joined,
* ``DISTKEY`` on the dominant equi-join column with enough distinct
  values to spread across slices,
* a compound ``SORTKEY`` when one column dominates predicates, or an
  ``INTERLEAVED SORTKEY`` when several columns share the predicate load
  (the z-curve trade-off of §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distribution.diststyle import DistStyle
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.workload import GROUP, JOIN, PREDICATE, WorkloadLog

#: Tables at or below this row count are candidates for DISTSTYLE ALL.
SMALL_TABLE_ROWS = 10_000
#: A join column must hash to at least this many distinct values to
#: distribute without hot slices.
MIN_DISTKEY_DISTINCT = 16
#: Secondary predicate columns within this ratio of the top one argue for
#: an interleaved key.
INTERLEAVE_RATIO = 0.5


@dataclass(frozen=True)
class Recommendation:
    """One suggested change to a table's physical design."""

    table_name: str
    kind: str  # "diststyle" | "distkey" | "sortkey"
    current: str
    suggested: str
    rationale: str

    def as_ddl_fragment(self) -> str:
        return self.suggested


class TuningAdvisor:
    """Derives design recommendations from workload + statistics."""

    def __init__(self, catalog: Catalog, workload: WorkloadLog):
        self._catalog = catalog
        self._workload = workload

    def recommend(self, table_name: str) -> list[Recommendation]:
        """Recommendations for one table (empty = design already fits)."""
        table = self._catalog.table(table_name)
        out: list[Recommendation] = []
        out.extend(self._distribution(table))
        out.extend(self._sortkey(table))
        return out

    def recommend_all(self) -> list[Recommendation]:
        out: list[Recommendation] = []
        for name in self._catalog.table_names():
            out.extend(self.recommend(name))
        return out

    # ---- distribution ------------------------------------------------------

    def _distribution(self, table: TableInfo) -> list[Recommendation]:
        joins = self._workload.usage(table.name, JOIN)
        current = table.distribution.describe()
        stats = table.statistics

        if not joins:
            return []
        top_column, top_count = joins[0]

        # Small, join-heavy tables: replicate.
        if (
            stats.row_count
            and stats.row_count <= SMALL_TABLE_ROWS
            and table.distribution.style is not DistStyle.ALL
        ):
            return [
                Recommendation(
                    table_name=table.name,
                    kind="diststyle",
                    current=current,
                    suggested="DISTSTYLE ALL",
                    rationale=(
                        f"{stats.row_count} rows, joined {top_count}x: "
                        f"replication makes every join co-located for "
                        f"{stats.row_count}-row storage per slice"
                    ),
                )
            ]

        # Larger tables: hash on the dominant join key if it spreads.
        column_stats = stats.columns.get(top_column)
        distinct = column_stats.distinct_count if column_stats else 0
        already = (
            table.distribution.style is DistStyle.KEY
            and getattr(table.distribution, "column", None) == top_column
        )
        if already or distinct < MIN_DISTKEY_DISTINCT:
            return []
        return [
            Recommendation(
                table_name=table.name,
                kind="distkey",
                current=current,
                suggested=f"DISTKEY({top_column})",
                rationale=(
                    f"{top_column!r} used in {top_count} joins with "
                    f"~{distinct} distinct values: co-locates the dominant "
                    f"join and spreads across slices"
                ),
            )
        ]

    # ---- sort keys -------------------------------------------------------------

    def _sortkey(self, table: TableInfo) -> list[Recommendation]:
        predicates = self._workload.usage(table.name, PREDICATE)
        if not predicates:
            return []
        current = table.sort_key.describe() if table.sort_key else "(none)"
        top_column, top_count = predicates[0]
        strong = [
            column
            for column, count in predicates[:4]
            if count >= top_count * INTERLEAVE_RATIO
        ]
        if len(strong) >= 2:
            suggested = f"INTERLEAVED SORTKEY({', '.join(strong)})"
            rationale = (
                f"predicates spread over {strong}: a z-curve prunes on "
                f"every dimension where a compound key serves only "
                f"{strong[0]!r}"
            )
        else:
            suggested = f"SORTKEY({top_column})"
            rationale = (
                f"{top_column!r} carries {top_count} of the table's "
                f"predicates: sorting on it enables zone-map pruning"
            )
        if table.sort_key is not None:
            same_columns = list(table.sort_key.columns) == strong or (
                len(strong) < 2
                and list(table.sort_key.columns) == [top_column]
            )
            if same_columns:
                return []
        return [
            Recommendation(
                table_name=table.name,
                kind="sortkey",
                current=current,
                suggested=suggested,
                rationale=rationale,
            )
        ]
