"""Comparator models: the legacy SMP warehouse and the Hadoop cluster.

§1 gives both comparators' throughputs directly: "Using an existing
scale-out commercial data warehouse, they were able to analyze 1 week of
data per hour ... Using much larger Hadoop clusters, they were able to
analyze up to 1 month of data per hour, though these clusters were very
expensive to administer." And the join "didn't complete in over a week on
their existing systems."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.workload import JoinSpec
from repro.util.units import GB, TB


@dataclass
class LegacyWarehouseModel:
    """A shared SMP warehouse at its §1-quoted scan rate.

    Large joins degrade catastrophically: the build side exceeds memory,
    so the system falls back to multi-pass external sort-merge, with the
    storage backplane shared with the production reporting load.
    """

    #: §1: "1 week of data per hour" = 14 TB raw / 3600 s
    scan_raw_bytes_per_s: float = (7 * 2 * TB) / 3600.0
    #: compression the legacy row store achieves on this data
    compression_ratio: float = 1.5
    #: memory available to one join
    join_memory_bytes: float = 64 * GB
    #: effective backplane IO for spill traffic under concurrent load
    spill_io_bytes_per_s: float = 0.35 * GB
    #: page size used by the external-sort fan-in computation
    sort_page_bytes: float = 64 * 1024 * 1024
    #: bytes per big-side row the row store must move through the sort
    #: (a row store cannot project columns out of pages)
    row_width_bytes: float = 64.0

    def scan_seconds(self, raw_bytes: float) -> float:
        return raw_bytes / self.scan_raw_bytes_per_s

    def join_seconds(self, join: JoinSpec) -> float:
        """External sort-merge join of the big side.

        The big input exceeds memory by orders of magnitude, so it is
        externally sorted: pass 0 writes sorted runs, each merge pass
        reads and writes the full input, and the merge fan-in is bounded
        by memory/page. Every pass moves data over the contended
        backplane.
        """
        big_bytes = join.big_rows * self.row_width_bytes
        runs = max(1.0, big_bytes / self.join_memory_bytes)
        fan_in = max(2.0, self.join_memory_bytes / self.sort_page_bytes)
        merge_passes = max(1.0, math.ceil(math.log(runs, fan_in)))
        total_passes = 1 + merge_passes  # run formation + merges
        spill_traffic = big_bytes * total_passes * 2  # read + write per pass
        return spill_traffic / self.spill_io_bytes_per_s


@dataclass
class HadoopModel:
    """A 2013-era MapReduce cluster at its §1-quoted scan rate.

    Joins run as multiple MR stages, each materialising its output to
    HDFS (3-way replicated), so effective work is several times the input
    size; per-stage scheduling overhead adds minutes.
    """

    #: §1: "1 month of data per hour" = 60 TB raw / 3600 s
    scan_raw_bytes_per_s: float = (30 * 2 * TB) / 3600.0
    #: stages for a repartition join + aggregation
    join_stages: int = 3
    #: bytes written per byte read across a stage (shuffle + 3x HDFS)
    materialization_factor: float = 2.5
    #: job/stage scheduling overhead
    stage_overhead_s: float = 90.0
    node_count: int = 500
    admin_staff: float = 4.0  # "very expensive to administer"

    def scan_seconds(self, raw_bytes: float) -> float:
        return raw_bytes / self.scan_raw_bytes_per_s

    def join_seconds(self, join: JoinSpec) -> float:
        input_bytes = join.big_scan_bytes * 4  # row files, no columnar projection
        per_stage = (
            input_bytes * self.materialization_factor / self.scan_raw_bytes_per_s
        )
        return self.join_stages * (per_stage + self.stage_overhead_s)
