"""Analytic performance model for paper-scale workloads.

The Section-1 numbers (5-billion-row daily loads in 10 minutes, a
2-trillion × 6-billion row join in under 14 minutes, week-plus on the
legacy warehouse) were produced on a multi-petabyte AWS fleet that a
laptop cannot re-run. Per the repro≤2 substitution rule, this package
models those operations analytically: per-node throughput profiles for
paper-era node types, workload descriptions, and comparator models for
the legacy SMP warehouse and the Hadoop cluster the paper's intro
describes. The Python engine calibrates the *relative* effects (zone
maps, co-location, compression); this model supplies the absolute scale.

Every parameter is a named constant with a documented provenance; the
benchmark (t1) prints paper-vs-model side by side and asserts shape
(orderings and rough factors), not absolute equality.
"""

from repro.perfmodel.profiles import NodeProfile, NODE_PROFILES
from repro.perfmodel.workload import RetailWorkload, JoinSpec
from repro.perfmodel.redshift_model import RedshiftPerfModel
from repro.perfmodel.comparators import LegacyWarehouseModel, HadoopModel
from repro.perfmodel.calibrate import EngineCalibration, calibrate_engine

__all__ = [
    "NodeProfile", "NODE_PROFILES",
    "RetailWorkload", "JoinSpec",
    "RedshiftPerfModel",
    "LegacyWarehouseModel", "HadoopModel",
    "EngineCalibration", "calibrate_engine",
]
