"""Calibration of the analytic model against the real Python engine.

Runs small measured workloads on the embedded engine and extracts
per-slice throughputs. Those throughputs validate the model's *structure*
(operations parallelise per slice, joins are probe- or scan-bound,
co-location removes movement) even though the absolute Python rates are
orders of magnitude below C++ on real hardware; the ratio between them is
reported so EXPERIMENTS.md can say exactly what was scaled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.cluster import Cluster


@dataclass
class EngineCalibration:
    """Measured per-slice throughputs of the Python engine."""

    scan_rows_per_s_per_slice: float
    ingest_rows_per_s_per_slice: float
    probe_rows_per_s_per_slice: float
    slice_count: int

    def python_slowdown_vs_profile(
        self, profile_scan_rows_per_s_per_slice: float
    ) -> float:
        """How much slower the Python engine scans than the modelled
        hardware (the documented scale factor)."""
        return profile_scan_rows_per_s_per_slice / self.scan_rows_per_s_per_slice


def calibrate_engine(
    rows: int = 60_000,
    node_count: int = 2,
    slices_per_node: int = 2,
) -> EngineCalibration:
    """Measure engine scan/ingest/probe rates on a synthetic workload."""
    cluster = Cluster(
        node_count=node_count,
        slices_per_node=slices_per_node,
        block_capacity=4096,
    )
    session = cluster.connect()
    session.execute(
        "CREATE TABLE cal_fact (k int, v int, w float) DISTKEY(k)"
    )
    session.execute("CREATE TABLE cal_dim (k int, label varchar(16)) DISTKEY(k)")
    lines = [f"{i % 1000}|{i}|{(i % 77) * 1.5}" for i in range(rows)]
    cluster.register_inline_source("inline://cal_fact", lines)
    cluster.register_inline_source(
        "inline://cal_dim", [f"{i}|label{i}" for i in range(1000)]
    )

    start = time.perf_counter()
    session.execute("COPY cal_fact FROM 'inline://cal_fact'")
    ingest_seconds = time.perf_counter() - start
    session.execute("COPY cal_dim FROM 'inline://cal_dim'")

    start = time.perf_counter()
    session.execute("SELECT count(*), sum(v) FROM cal_fact WHERE w > 1.0")
    scan_seconds = time.perf_counter() - start

    start = time.perf_counter()
    session.execute(
        "SELECT count(*) FROM cal_fact f JOIN cal_dim d ON f.k = d.k"
    )
    probe_seconds = time.perf_counter() - start

    slices = cluster.slice_count
    return EngineCalibration(
        scan_rows_per_s_per_slice=rows / scan_seconds / slices,
        ingest_rows_per_s_per_slice=rows / ingest_seconds / slices,
        probe_rows_per_s_per_slice=rows / probe_seconds / slices,
        slice_count=slices,
    )
