"""The Amazon Retail workload of §1, as data.

"The Amazon Retail team collects about 5 billion web log records daily
(2TB/day, growing 67% YoY) ... they were able to perform their daily load
(5B rows) in 10 minutes, load a month of backfill data (150B rows) in
9.75 hours, take a backup in 30 minutes and restore it to a new cluster
in 48 hours ... run queries that joined 2 trillion rows of click traffic
with 6 billion rows of product ids in less than 14 minutes, an operation
that didn't complete in over a week on their existing systems."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import TB


@dataclass(frozen=True)
class JoinSpec:
    """A two-table equi-join at scale."""

    big_rows: int
    big_bytes_per_row_scanned: int
    small_rows: int
    small_bytes_per_row: int

    @property
    def big_scan_bytes(self) -> int:
        return self.big_rows * self.big_bytes_per_row_scanned

    @property
    def small_bytes(self) -> int:
        return self.small_rows * self.small_bytes_per_row


@dataclass(frozen=True)
class RetailWorkload:
    """The paper's workload constants."""

    daily_rows: int = 5_000_000_000
    daily_raw_bytes: int = 2 * TB
    backfill_rows: int = 150_000_000_000
    retention_days: int = 450  # "maintain a cap of 15 months of log"
    compression_ratio: float = 4.0

    @property
    def raw_bytes_per_row(self) -> float:
        return self.daily_raw_bytes / self.daily_rows  # ~400 B

    @property
    def backfill_raw_bytes(self) -> int:
        return int(self.backfill_rows * self.raw_bytes_per_row)

    @property
    def dataset_raw_bytes(self) -> int:
        """Full retained dataset (15 months of daily volume)."""
        return self.retention_days * self.daily_raw_bytes

    @property
    def dataset_compressed_bytes(self) -> int:
        return int(self.dataset_raw_bytes / self.compression_ratio)

    @property
    def daily_compressed_bytes(self) -> int:
        return int(self.daily_raw_bytes / self.compression_ratio)

    def click_product_join(self) -> JoinSpec:
        """The 2T × 6B join. The scan projects the few columns the join
        touches (~16 compressed bytes/row of click traffic); the product
        side carries id + attributes (~32 B/row)."""
        return JoinSpec(
            big_rows=2_000_000_000_000,
            big_bytes_per_row_scanned=16,
            small_rows=6_000_000_000,
            small_bytes_per_row=32,
        )

    #: Paper-reported outcomes for the t1 comparison table (seconds).
    PAPER_RESULTS = {
        "daily_load_s": 10 * 60.0,
        "backfill_s": 9.75 * 3600.0,
        "backup_s": 30 * 60.0,
        "restore_s": 48 * 3600.0,
        "join_s": 14 * 60.0,
        "legacy_join_s": 7 * 24 * 3600.0,  # "over a week"
        "legacy_scan_rate_raw_bytes_per_s": (7 * 2 * TB) / 3600.0,   # 1 wk data/hour
        "hadoop_scan_rate_raw_bytes_per_s": (30 * 2 * TB) / 3600.0,  # 1 mo data/hour
    }
