"""Analytic model of a Redshift cluster on the paper's workload."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.profiles import NodeProfile, profile
from repro.perfmodel.workload import JoinSpec, RetailWorkload


@dataclass
class RedshiftPerfModel:
    """A cluster of ``node_count`` × ``node_type`` under the model.

    All operations parallelise across nodes (the engine measured this
    behaviour at small scale: loads, scans, joins and backups are
    data-parallel per slice), so cluster throughput = node throughput ×
    node count, degraded by ``parallel_efficiency`` for coordination.
    """

    node_type: str = "dw1.8xlarge"
    node_count: int = 100
    parallel_efficiency: float = 0.9
    #: blocks changed per byte of logical change: loads into sorted tables
    #: rewrite neighbouring blocks (vacuum / sort maintenance), so the
    #: incremental backup ships several times the logical delta.
    backup_write_amplification: float = 8.0

    @property
    def nodes(self) -> NodeProfile:
        return profile(self.node_type)

    @property
    def _effective_nodes(self) -> float:
        return self.node_count * self.parallel_efficiency

    # ---- operations -----------------------------------------------------------

    def load_seconds(self, raw_bytes: float) -> float:
        """COPY of *raw_bytes* of delimited input, parallel across slices."""
        rate = self.nodes.ingest_raw_bytes_per_s * self._effective_nodes
        return raw_bytes / rate

    def scan_seconds(self, compressed_bytes: float) -> float:
        rate = self.nodes.scan_bytes_per_s * self._effective_nodes
        return compressed_bytes / rate

    def backup_seconds(self, changed_compressed_bytes: float) -> float:
        """Incremental backup: wall time tracks per-node changed data
        ("proportional to the data changed on a single node")."""
        per_node = (
            changed_compressed_bytes
            * self.backup_write_amplification
            / self.node_count
        )
        return per_node / self.nodes.s3_bytes_per_s

    def restore_seconds(self, dataset_compressed_bytes: float) -> float:
        """Full (non-streaming) restore of the whole dataset from S3."""
        per_node = dataset_compressed_bytes / self.node_count
        return per_node / self.nodes.s3_bytes_per_s

    def streaming_restore_first_query_seconds(self) -> float:
        """Metadata + catalog restoration before SQL opens."""
        return 180.0

    def join_seconds(self, join: JoinSpec, colocated: bool = True) -> float:
        """Distributed hash join.

        Scan both sides, move the small side unless co-located on the
        distribution key, then probe. The big side streams through the
        probe pipelined with its scan, so wall time is the max of scan and
        probe, not the sum.
        """
        scan_big = self.scan_seconds(join.big_scan_bytes)
        scan_small = self.scan_seconds(join.small_bytes)
        if colocated:
            movement = 0.0
        else:
            rate = self.nodes.network_bytes_per_s * self._effective_nodes
            movement = join.small_bytes / rate
        probe_rate = self.nodes.probe_rows_per_s * self._effective_nodes
        probe = join.big_rows / probe_rate
        return scan_small + movement + max(scan_big, probe)

    # ---- workload roll-up -------------------------------------------------------

    def retail_summary(self, workload: RetailWorkload | None = None) -> dict:
        """Model outputs for every §1 operation (seconds)."""
        w = workload or RetailWorkload()
        return {
            "daily_load_s": self.load_seconds(w.daily_raw_bytes),
            "backfill_s": self.load_seconds(w.backfill_raw_bytes),
            "backup_s": self.backup_seconds(w.daily_compressed_bytes),
            "restore_s": self.restore_seconds(w.dataset_compressed_bytes),
            "join_s": self.join_seconds(w.click_product_join()),
        }

    # ---- cost ----------------------------------------------------------------------

    def hourly_cost_usd(self) -> float:
        return self.node_count * self.nodes.hourly_price_usd

    def storage_capacity_bytes(self) -> int:
        return self.node_count * self.nodes.storage_bytes
