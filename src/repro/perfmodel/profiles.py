"""Per-node throughput profiles for paper-era Redshift node types.

Figures are drawn from 2013–2015 public AWS documentation and typical
measured behaviour of those instance families; they are inputs to an
order-of-magnitude model, not measurements of AWS hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, MB, TB


@dataclass(frozen=True)
class NodeProfile:
    """What one compute node of a type can do."""

    name: str
    slices: int
    storage_bytes: int
    #: sequential compressed-column scan bandwidth per node
    scan_bytes_per_s: float
    #: sustained COPY ingest of *raw* input per node (parse + distribute +
    #: sort + mirror)
    ingest_raw_bytes_per_s: float
    #: hash-join probe rate per node
    probe_rows_per_s: float
    #: interconnect bandwidth per node
    network_bytes_per_s: float
    #: S3 backup/restore bandwidth per node
    s3_bytes_per_s: float
    hourly_price_usd: float


NODE_PROFILES: dict[str, NodeProfile] = {
    # Dense-storage HDD node (paper-era dw1.xlarge)
    "dw1.xlarge": NodeProfile(
        name="dw1.xlarge",
        slices=2,
        storage_bytes=2 * TB,
        scan_bytes_per_s=0.40 * GB,
        ingest_raw_bytes_per_s=30 * MB,
        probe_rows_per_s=60_000_000,
        network_bytes_per_s=0.12 * GB,
        s3_bytes_per_s=12 * MB,
        hourly_price_usd=0.85,
    ),
    # Dense-storage large node
    "dw1.8xlarge": NodeProfile(
        name="dw1.8xlarge",
        slices=16,
        storage_bytes=16 * TB,
        scan_bytes_per_s=0.75 * GB,
        ingest_raw_bytes_per_s=60 * MB,
        probe_rows_per_s=250_000_000,
        network_bytes_per_s=1.2 * GB,
        s3_bytes_per_s=40 * MB,
        hourly_price_usd=6.80,
    ),
    # Dense-compute SSD node (the $0.25/hour free-trial node)
    "dw2.large": NodeProfile(
        name="dw2.large",
        slices=2,
        storage_bytes=160 * 10 ** 9,
        scan_bytes_per_s=0.60 * GB,
        ingest_raw_bytes_per_s=45 * MB,
        probe_rows_per_s=90_000_000,
        network_bytes_per_s=0.12 * GB,
        s3_bytes_per_s=15 * MB,
        hourly_price_usd=0.25,
    ),
    # Dense-compute SSD large node
    "dw2.8xlarge": NodeProfile(
        name="dw2.8xlarge",
        slices=32,
        storage_bytes=2560 * 10 ** 9,
        scan_bytes_per_s=6.0 * GB,
        ingest_raw_bytes_per_s=180 * MB,
        probe_rows_per_s=900_000_000,
        network_bytes_per_s=1.2 * GB,
        s3_bytes_per_s=60 * MB,
        hourly_price_usd=4.80,
    ),
}


def profile(name: str) -> NodeProfile:
    try:
        return NODE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown node type {name!r}; known: {sorted(NODE_PROFILES)}"
        ) from None
