"""Abstract syntax tree for the supported SQL dialect.

Nodes are plain frozen-ish dataclasses with no behaviour beyond rendering;
semantic analysis happens in :mod:`repro.plan.binder`. Every node knows how
to render itself back to SQL (``to_sql``), which the tests use for
parse/render round-trips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence


class Node:
    """Base class for AST nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression(Node):
    pass


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, NULL, or typed (DATE '...')."""

    value: object
    type_name: str | None = None  # for DATE '...' / TIMESTAMP '...' literals

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            prefix = f"{self.type_name.upper()} " if self.type_name else ""
            return f"{prefix}'{escaped}'"
        return str(self.value)


@dataclass
class ColumnRef(Expression):
    """A possibly qualified column reference (``t.col`` or ``col``)."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class BoundRef(Expression):
    """A resolved input-column reference produced by the binder.

    ``index`` addresses the flattened input row of the operator the
    expression runs in; ``sql_type``/``name`` carry schema information
    forward. Never produced by the parser.
    """

    index: int
    sql_type: object = None  # SqlType; typed loosely to avoid an import cycle
    name: str = ""

    def to_sql(self) -> str:
        # Index-qualified so structural comparison of bound expressions via
        # to_sql() is exact even when column names repeat across relations.
        return f"${self.index}:{self.name}" if self.name else f"${self.index}"


@dataclass
class Star(Expression):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class BinaryOp(Expression):
    """Infix operator application."""

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class UnaryOp(Expression):
    """Prefix operator: ``-x`` or ``NOT x``."""

    op: str
    operand: Expression

    def to_sql(self) -> str:
        return f"({self.op} {self.operand.to_sql()})"


@dataclass
class FunctionCall(Expression):
    """Function or aggregate invocation.

    ``approximate`` marks Redshift's APPROXIMATE COUNT(DISTINCT x).
    """

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False
    approximate: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        prefix = "APPROXIMATE " if self.approximate else ""
        return f"{prefix}{self.name.upper()}({inner})"


@dataclass
class CastExpr(Expression):
    """``CAST(x AS type)`` or ``x::type``."""

    operand: Expression
    type_name: str
    type_params: tuple[int, ...] = ()

    def to_sql(self) -> str:
        params = (
            "(" + ", ".join(str(p) for p in self.type_params) + ")"
            if self.type_params
            else ""
        )
        return f"CAST({self.operand.to_sql()} AS {self.type_name}{params})"


@dataclass
class CaseExpr(Expression):
    """Searched CASE: WHEN cond THEN value ... [ELSE default] END."""

    whens: list[tuple[Expression, Expression]]
    default: Expression | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a scalar value.

    Only uncorrelated subqueries are supported; the session pre-executes
    them and substitutes the resulting literal before planning.
    """

    query: "SelectQuery | SetOperation"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


@dataclass
class InExpr(Expression):
    """``x [NOT] IN (v1, v2, ...)`` or ``x [NOT] IN (SELECT ...)``.

    ``subquery`` and ``items`` are mutually exclusive; the session expands
    an uncorrelated subquery into literal items before planning.
    """

    operand: Expression
    items: list[Expression]
    negated: bool = False
    subquery: "SelectQuery | SetOperation | None" = None

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        if self.subquery is not None:
            return f"({self.operand.to_sql()} {op} ({self.subquery.to_sql()}))"
        items = ", ".join(i.to_sql() for i in self.items)
        return f"({self.operand.to_sql()} {op} ({items}))"


@dataclass
class BetweenExpr(Expression):
    """``x [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {op} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass
class IsNullExpr(Expression):
    """``x IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {op})"


@dataclass
class LikeExpr(Expression):
    """``x [NOT] LIKE pattern`` (and case-insensitive ILIKE)."""

    operand: Expression
    pattern: Expression
    negated: bool = False
    case_insensitive: bool = False

    def to_sql(self) -> str:
        op = "ILIKE" if self.case_insensitive else "LIKE"
        if self.negated:
            op = f"NOT {op}"
        return f"({self.operand.to_sql()} {op} {self.pattern.to_sql()})"


# ---------------------------------------------------------------------------
# SELECT structure
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(Node):
    """One select-list entry: expression plus optional alias."""

    expression: Expression
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {self.alias}"
        return self.expression.to_sql()


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"


class FromItem(Node):
    """Base for things that can appear in FROM."""

    alias: str | None


@dataclass
class TableRef(FromItem):
    """A named table, optionally aliased."""

    name: str
    alias: str | None = None

    def to_sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "SelectQuery"
    alias: str

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) AS {self.alias}"

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass
class Join(FromItem):
    """A join tree node."""

    kind: JoinKind
    left: FromItem
    right: FromItem
    condition: Expression | None = None  # None only for CROSS
    alias: str | None = None

    def to_sql(self) -> str:
        if self.kind is JoinKind.CROSS:
            return f"{self.left.to_sql()} CROSS JOIN {self.right.to_sql()}"
        return (
            f"{self.left.to_sql()} {self.kind.value} JOIN "
            f"{self.right.to_sql()} ON {self.condition.to_sql()}"
        )


@dataclass
class OrderItem(Node):
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        return f"{self.expression.to_sql()}{' DESC' if self.descending else ''}"


@dataclass
class CommonTableExpr(Node):
    """One WITH entry: name AS (query)."""

    name: str
    query: "SelectQuery"

    def to_sql(self) -> str:
        return f"{self.name} AS ({self.query.to_sql()})"


@dataclass
class SelectQuery(Node):
    """A full query expression (one WITH/SELECT block)."""

    items: list[SelectItem]
    from_item: FromItem | None = None
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    ctes: list[CommonTableExpr] = field(default_factory=list)

    def to_sql(self) -> str:
        parts: list[str] = []
        if self.ctes:
            parts.append(
                "WITH " + ", ".join(cte.to_sql() for cte in self.ctes)
            )
        sel = "SELECT DISTINCT" if self.distinct else "SELECT"
        parts.append(f"{sel} " + ", ".join(i.to_sql() for i in self.items))
        if self.from_item is not None:
            parts.append(f"FROM {self.from_item.to_sql()}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(g.to_sql() for g in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class SetOperation(Node):
    """UNION / INTERSECT / EXCEPT over two query expressions.

    ``all`` keeps duplicates (UNION ALL); INTERSECT/EXCEPT follow
    PostgreSQL's default DISTINCT semantics when ``all`` is False.
    ORDER BY / LIMIT apply to the combined result.
    """

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: "SelectQuery | SetOperation"
    right: "SelectQuery | SetOperation"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None

    def to_sql(self) -> str:
        keyword = self.op.upper() + (" ALL" if self.all else "")
        out = f"{self.left.to_sql()} {keyword} {self.right.to_sql()}"
        if self.order_by:
            out += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            out += f" LIMIT {self.limit}"
        if self.offset is not None:
            out += f" OFFSET {self.offset}"
        return out


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(Node):
    pass


@dataclass
class SelectStatement(Statement):
    query: SelectQuery

    def to_sql(self) -> str:
        return self.query.to_sql()


@dataclass
class ColumnDef(Node):
    """One column in CREATE TABLE."""

    name: str
    type_name: str
    type_params: tuple[int, ...] = ()
    encode: str | None = None
    not_null: bool = False

    def to_sql(self) -> str:
        params = (
            "(" + ", ".join(str(p) for p in self.type_params) + ")"
            if self.type_params
            else ""
        )
        out = f"{self.name} {self.type_name}{params}"
        if self.not_null:
            out += " NOT NULL"
        if self.encode:
            out += f" ENCODE {self.encode}"
        return out


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: list[ColumnDef]
    diststyle: str = "even"  # even | key | all
    distkey: str | None = None
    sortkey: list[str] = field(default_factory=list)
    sortkey_interleaved: bool = False
    if_not_exists: bool = False

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        out = "CREATE TABLE "
        if self.if_not_exists:
            out += "IF NOT EXISTS "
        out += f"{self.name} ({cols})"
        if self.diststyle == "key":
            out += f" DISTSTYLE KEY DISTKEY({self.distkey})"
        elif self.diststyle != "even":
            out += f" DISTSTYLE {self.diststyle.upper()}"
        if self.sortkey:
            prefix = "INTERLEAVED " if self.sortkey_interleaved else ""
            out += f" {prefix}SORTKEY({', '.join(self.sortkey)})"
        return out


@dataclass
class CreateTableAsStatement(Statement):
    """CTAS: CREATE TABLE name [DISTSTYLE...] AS select."""

    name: str
    query: SelectQuery
    diststyle: str = "even"
    distkey: str | None = None
    sortkey: list[str] = field(default_factory=list)

    def to_sql(self) -> str:
        out = f"CREATE TABLE {self.name}"
        if self.diststyle == "key":
            out += f" DISTSTYLE KEY DISTKEY({self.distkey})"
        elif self.diststyle != "even":
            out += f" DISTSTYLE {self.diststyle.upper()}"
        if self.sortkey:
            out += f" SORTKEY({', '.join(self.sortkey)})"
        return f"{out} AS {self.query.to_sql()}"


@dataclass
class DropTableStatement(Statement):
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        mid = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {mid}{self.name}"


@dataclass
class InsertStatement(Statement):
    """INSERT INTO t [(cols)] VALUES (...), ... or INSERT INTO t SELECT ..."""

    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)
    query: SelectQuery | None = None

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.query is not None:
            return f"INSERT INTO {self.table}{cols} {self.query.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Expression | None = None

    def to_sql(self) -> str:
        out = f"DELETE FROM {self.table}"
        if self.where is not None:
            out += f" WHERE {self.where.to_sql()}"
        return out


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Expression | None = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        out = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            out += f" WHERE {self.where.to_sql()}"
        return out


@dataclass
class CopyStatement(Statement):
    """COPY table FROM 'source' [WITH options].

    Options mirror the Redshift COPY knobs the paper mentions: DELIMITER,
    NULL AS, GZIP, JSON, COMPUPDATE ON/OFF, STATUPDATE ON/OFF.
    """

    table: str
    source: str
    columns: list[str] = field(default_factory=list)
    options: dict[str, object] = field(default_factory=dict)

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        out = f"COPY {self.table}{cols} FROM '{self.source}'"
        for key, value in self.options.items():
            if key in ("compupdate", "statupdate"):
                out += f" {key.upper()} {'ON' if value else 'OFF'}"
            elif value is True:
                out += f" {key.upper()}"
            else:
                out += f" {key.upper()} '{value}'"
        return out


@dataclass
class AnalyzeStatement(Statement):
    """ANALYZE [table] — refresh optimizer statistics.

    ``compression=True`` is ANALYZE COMPRESSION (report codec choices).
    """

    table: str | None = None
    compression: bool = False

    def to_sql(self) -> str:
        out = "ANALYZE"
        if self.compression:
            out += " COMPRESSION"
        if self.table:
            out += f" {self.table}"
        return out


@dataclass
class VacuumStatement(Statement):
    """VACUUM [table] — reclaim deleted rows and restore sort order."""

    table: str | None = None
    reindex: bool = False

    def to_sql(self) -> str:
        out = "VACUUM"
        if self.reindex:
            out += " REINDEX"
        if self.table:
            out += f" {self.table}"
        return out


@dataclass
class ExplainStatement(Statement):
    statement: Statement
    #: EXPLAIN ANALYZE: run the statement and report per-step actuals.
    analyze: bool = False

    def to_sql(self) -> str:
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.statement.to_sql()}"


@dataclass
class BeginStatement(Statement):
    def to_sql(self) -> str:
        return "BEGIN"


@dataclass
class CommitStatement(Statement):
    def to_sql(self) -> str:
        return "COMMIT"


@dataclass
class RollbackStatement(Statement):
    def to_sql(self) -> str:
        return "ROLLBACK"


@dataclass
class SetStatement(Statement):
    """``SET name = value`` / ``SET name TO value``: session parameters
    (e.g. ``SET executor = vectorized``)."""

    name: str
    value: str

    def to_sql(self) -> str:
        return f"SET {self.name} = {self.value}"


def walk_expressions(expr: Expression):
    """Yield *expr* and every expression nested inside it, depth first.

    ``BoundRef`` and ``Literal`` are leaves.
    """
    yield expr
    children: Sequence[Expression] = ()
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, FunctionCall):
        children = tuple(expr.args)
    elif isinstance(expr, CastExpr):
        children = (expr.operand,)
    elif isinstance(expr, CaseExpr):
        children = tuple(
            e for pair in expr.whens for e in pair
        ) + ((expr.default,) if expr.default is not None else ())
    elif isinstance(expr, InExpr):
        children = (expr.operand, *expr.items)
    elif isinstance(expr, BetweenExpr):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, IsNullExpr):
        children = (expr.operand,)
    elif isinstance(expr, LikeExpr):
        children = (expr.operand, expr.pattern)
    for child in children:
        yield from walk_expressions(child)
