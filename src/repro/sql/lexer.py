"""SQL lexer.

Produces a flat token stream with line/column positions for error messages.
Identifiers are case-folded to lower case unless double-quoted; keywords
are recognised case-insensitively. Comments (``--`` to end of line and
``/* ... */``) are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


#: Reserved words. Anything else alphabetic lexes as IDENT.
KEYWORDS = frozenset(
    """
    select from where group by having order limit offset distinct all
    as on inner left right full outer cross join and or not in is null
    like ilike between case when then else end cast true false
    create table drop insert into values delete update set copy
    analyze vacuum explain begin commit rollback transaction work
    diststyle distkey sortkey interleaved encode if exists
    with compression reindex union intersect except
    asc desc primary key unique references foreign
    approximate count sum avg min max
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<>", "!=", "<=", ">=", "||", "::",
    "(", ")", ",", ".", ";", "=", "<", ">", "+", "-", "*", "/", "%",
]


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word.lower()

    def __repr__(self) -> str:  # compact for parser error messages
        return f"{self.type.value}:{self.text!r}@{self.line}:{self.column}"


class Lexer:
    """Single-pass lexer over a SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        idx = self._pos + ahead
        return self._text[idx] if idx < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._text):
                if self._text[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError(
                        "unterminated block comment", self._pos,
                        start_line, start_col,
                    )
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", line, col)
        if ch == "'":
            return self._string(line, col)
        if ch == '"':
            return self._quoted_ident(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, col)
        if ch.isalpha() or ch == "_":
            return self._word(line, col)
        for op in _OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, col)
        raise LexError(f"unexpected character {ch!r}", self._pos, line, col)

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated string literal", self._pos, line, col)
            if ch == "'":
                if self._peek(1) == "'":  # '' escape
                    chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, col)
            chars.append(ch)
            self._advance()

    def _quoted_ident(self, line: int, col: int) -> Token:
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated quoted identifier", self._pos, line, col)
            if ch == '"':
                if self._peek(1) == '"':
                    chars.append('"')
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.IDENT, "".join(chars), line, col)
            chars.append(ch)
            self._advance()

    def _number(self, line: int, col: int) -> Token:
        chars: list[str] = []
        seen_dot = False
        seen_exp = False
        while True:
            ch = self._peek()
            if ch.isdigit():
                chars.append(ch)
            elif ch == "." and not seen_dot and not seen_exp:
                # `1.` followed by another `.` would be range syntax; not supported
                seen_dot = True
                chars.append(ch)
            elif ch in "eE" and not seen_exp and chars and chars[-1].isdigit():
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    seen_exp = True
                    chars.append(ch)
                    if nxt in "+-":
                        self._advance()
                        chars.append(nxt)
                else:
                    break
            else:
                break
            self._advance()
        return Token(TokenType.NUMBER, "".join(chars), line, col)

    def _word(self, line: int, col: int) -> Token:
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch.isalnum() or ch == "_":
                chars.append(ch)
                self._advance()
            else:
                break
        word = "".join(chars).lower()
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, line, col)
        return Token(TokenType.IDENT, word, line, col)


def tokenize(text: str) -> list[Token]:
    """Tokenize a SQL string (terminated by an EOF token)."""
    return Lexer(text).tokens()
