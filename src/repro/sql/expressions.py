"""Runtime expression semantics and the closure-tree evaluator.

Implements SQL's three-valued logic (TRUE/FALSE/NULL as True/False/None),
NULL-propagating arithmetic and comparison, LIKE matching, dynamic CAST,
and :func:`compile_expression`, which turns a bound AST expression into a
Python closure over a row tuple — the evaluation engine of the Volcano
executor. The code-generating executor emits source that calls the same
helpers, so both executors share one definition of SQL semantics.
"""

from __future__ import annotations

import datetime
import decimal
import functools
import re
from typing import Callable

from repro.datatypes.parsing import parse_literal
from repro.datatypes.types import SqlType, TypeKind
from repro.errors import AnalysisError, DataError, DivisionByZeroError, ExecutionError
from repro.sql import ast
from repro.sql.functions import scalar_function

Row = tuple
Evaluator = Callable[[Row], object]


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def sql_and(a: object, b: object) -> object:
    """NULL-aware AND: FALSE dominates NULL."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: object, b: object) -> object:
    """NULL-aware OR: TRUE dominates NULL."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: object) -> object:
    if a is None:
        return None
    return not a


# ---------------------------------------------------------------------------
# Comparison and arithmetic
# ---------------------------------------------------------------------------

def _harmonize(a: object, b: object) -> tuple[object, object]:
    """Make mixed numeric operands combinable (Decimal vs float)."""
    if isinstance(a, decimal.Decimal) and isinstance(b, float):
        return float(a), b
    if isinstance(a, float) and isinstance(b, decimal.Decimal):
        return a, float(b)
    if isinstance(a, decimal.Decimal) and isinstance(b, int):
        return a, decimal.Decimal(b)
    if isinstance(a, int) and isinstance(b, decimal.Decimal):
        return decimal.Decimal(a), b
    return a, b


def sql_eq(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a == b


def sql_ne(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a != b


def sql_lt(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a < b


def sql_le(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a <= b


def sql_gt(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a > b


def sql_ge(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a >= b


def sql_add(a, b):
    if a is None or b is None:
        return None
    # date/timestamp + integer days, the PostgreSQL convenience
    if isinstance(a, (datetime.date, datetime.datetime)) and isinstance(b, int):
        return a + datetime.timedelta(days=b)
    if isinstance(b, (datetime.date, datetime.datetime)) and isinstance(a, int):
        return b + datetime.timedelta(days=a)
    a, b = _harmonize(a, b)
    return a + b


def sql_sub(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, datetime.datetime) and isinstance(b, datetime.datetime):
        return (a - b).total_seconds() / 86400.0
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return (a - b).days
    if isinstance(a, (datetime.date, datetime.datetime)) and isinstance(b, int):
        return a - datetime.timedelta(days=b)
    a, b = _harmonize(a, b)
    return a - b


def sql_mul(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    return a * b


def sql_div(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    if b == 0:
        raise DivisionByZeroError()
    if isinstance(a, int) and isinstance(b, int):
        # SQL integer division truncates toward zero.
        q = a // b
        if q < 0 and q * b != a:
            q += 1
        return q
    return a / b


def sql_mod(a, b):
    if a is None or b is None:
        return None
    a, b = _harmonize(a, b)
    if b == 0:
        raise DivisionByZeroError()
    if isinstance(a, int) and isinstance(b, int):
        # Result takes the sign of the dividend (PostgreSQL %).
        return a - sql_div(a, b) * b
    return a % b


def sql_neg(a):
    return None if a is None else -a


def sql_concat(a, b):
    if a is None or b is None:
        return None
    return _to_text(a) + _to_text(b)


def _to_text(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "t" if value else "f"
    return str(value)


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=512)
def _like_regex(pattern: str, case_insensitive: bool) -> re.Pattern:
    out = ["^"]
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    out.append("$")
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    return re.compile("".join(out), flags)


def sql_like(value: object, pattern: object, case_insensitive: bool = False) -> object:
    if value is None or pattern is None:
        return None
    return bool(_like_regex(pattern, case_insensitive).match(value))


def sql_in(value: object, items: tuple) -> object:
    """Three-valued IN over an evaluated item tuple."""
    if value is None:
        return None
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
        else:
            result = sql_eq(value, item)
            if result is True:
                return True
    return None if saw_null else False


# ---------------------------------------------------------------------------
# CAST
# ---------------------------------------------------------------------------

def cast_value(value: object, target: SqlType) -> object:
    """Dynamic CAST following PostgreSQL conversion rules."""
    if value is None:
        return None
    kind = target.kind
    try:
        if target.is_character:
            text = _to_text(value)
            if isinstance(value, datetime.datetime):
                text = value.strftime(
                    "%Y-%m-%d %H:%M:%S.%f" if value.microsecond else "%Y-%m-%d %H:%M:%S"
                )
            return target.validate(text)
        if isinstance(value, str):
            return parse_literal(value.strip(), target)
        if target.is_integer:
            if isinstance(value, bool):
                return target.validate(int(value))
            if isinstance(value, (int, float, decimal.Decimal)):
                # Round-half-up like SQL, not banker's rounding.
                rounded = decimal.Decimal(str(value)).quantize(
                    0, rounding=decimal.ROUND_HALF_UP
                )
                return target.validate(int(rounded))
        if target.is_float and isinstance(value, (int, float, decimal.Decimal, bool)):
            return target.validate(float(value))
        if kind is TypeKind.DECIMAL and isinstance(
            value, (int, float, decimal.Decimal, bool)
        ):
            if isinstance(value, float):
                value = decimal.Decimal(str(value))
            return target.validate(
                value if isinstance(value, (int, decimal.Decimal)) else int(value)
            )
        if kind is TypeKind.BOOLEAN:
            if isinstance(value, (int, float)):
                return bool(value)
        if kind is TypeKind.DATE and isinstance(value, datetime.datetime):
            return value.date()
        return target.validate(value)
    except DataError:
        raise
    except (ValueError, decimal.InvalidOperation, ArithmeticError) as exc:
        raise DataError(f"cannot cast {value!r} to {target}") from exc


# ---------------------------------------------------------------------------
# Typed-literal materialisation
# ---------------------------------------------------------------------------

def literal_value(node: ast.Literal) -> object:
    """Materialise a literal, applying DATE/TIMESTAMP prefixes."""
    if node.type_name is None:
        return node.value
    if node.type_name == "date":
        return parse_literal(node.value, SqlType(TypeKind.DATE))
    if node.type_name == "timestamp":
        return parse_literal(node.value, SqlType(TypeKind.TIMESTAMP))
    raise AnalysisError(f"unsupported typed literal {node.type_name!r}")


# ---------------------------------------------------------------------------
# Closure compiler
# ---------------------------------------------------------------------------

_BINARY_IMPLS: dict[str, Callable[[object, object], object]] = {
    "=": sql_eq, "<>": sql_ne, "<": sql_lt, "<=": sql_le,
    ">": sql_gt, ">=": sql_ge,
    "+": sql_add, "-": sql_sub, "*": sql_mul, "/": sql_div, "%": sql_mod,
    "||": sql_concat,
    "AND": sql_and, "OR": sql_or,
}


def compile_expression(
    expr: ast.Expression,
    resolve: Callable[[ast.ColumnRef], int],
) -> Evaluator:
    """Compile a bound expression into a closure over a row tuple.

    *resolve* maps each column reference to its index in the input row;
    binding errors surface here as :class:`AnalysisError`.
    """
    if isinstance(expr, ast.Literal):
        value = literal_value(expr)
        return lambda row: value

    if isinstance(expr, ast.BoundRef):
        index = expr.index
        return lambda row: row[index]

    if isinstance(expr, ast.ColumnRef):
        index = resolve(expr)
        return lambda row: row[index]

    if isinstance(expr, ast.BinaryOp):
        impl = _BINARY_IMPLS.get(expr.op)
        if impl is None:
            raise AnalysisError(f"unsupported operator {expr.op!r}")
        left = compile_expression(expr.left, resolve)
        right = compile_expression(expr.right, resolve)
        return lambda row: impl(left(row), right(row))

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expression(expr.operand, resolve)
        if expr.op == "NOT":
            return lambda row: sql_not(operand(row))
        if expr.op == "-":
            return lambda row: sql_neg(operand(row))
        raise AnalysisError(f"unsupported unary operator {expr.op!r}")

    if isinstance(expr, ast.FunctionCall):
        fn = scalar_function(expr.name)
        fn.check_arity(len(expr.args))
        # date_part-style functions take a unit name that parses as a
        # column ref when unquoted; here all args are value expressions.
        arg_fns = [compile_expression(a, resolve) for a in expr.args]
        return lambda row: fn(*[f(row) for f in arg_fns])

    if isinstance(expr, ast.CastExpr):
        from repro.datatypes.types import type_from_name

        target = type_from_name(expr.type_name, *expr.type_params)
        operand = compile_expression(expr.operand, resolve)
        return lambda row: cast_value(operand(row), target)

    if isinstance(expr, ast.CaseExpr):
        branches = [
            (compile_expression(cond, resolve), compile_expression(val, resolve))
            for cond, val in expr.whens
        ]
        default = (
            compile_expression(expr.default, resolve)
            if expr.default is not None
            else None
        )

        def evaluate_case(row):
            for cond, val in branches:
                if cond(row) is True:
                    return val(row)
            return default(row) if default is not None else None

        return evaluate_case

    if isinstance(expr, ast.InExpr):
        operand = compile_expression(expr.operand, resolve)
        item_fns = [compile_expression(i, resolve) for i in expr.items]
        if expr.negated:
            return lambda row: sql_not(
                sql_in(operand(row), tuple(f(row) for f in item_fns))
            )
        return lambda row: sql_in(operand(row), tuple(f(row) for f in item_fns))

    if isinstance(expr, ast.BetweenExpr):
        operand = compile_expression(expr.operand, resolve)
        low = compile_expression(expr.low, resolve)
        high = compile_expression(expr.high, resolve)

        def evaluate_between(row):
            v = operand(row)
            result = sql_and(sql_ge(v, low(row)), sql_le(v, high(row)))
            return sql_not(result) if expr.negated else result

        return evaluate_between

    if isinstance(expr, ast.IsNullExpr):
        operand = compile_expression(expr.operand, resolve)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expr, ast.LikeExpr):
        operand = compile_expression(expr.operand, resolve)
        pattern = compile_expression(expr.pattern, resolve)
        ci = expr.case_insensitive

        def evaluate_like(row):
            result = sql_like(operand(row), pattern(row), ci)
            return sql_not(result) if expr.negated else result

        return evaluate_like

    if isinstance(expr, ast.Star):
        raise AnalysisError("* is not valid in this context")

    raise AnalysisError(f"cannot evaluate expression node {type(expr).__name__}")
