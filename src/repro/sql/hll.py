"""HyperLogLog sketch backing APPROXIMATE COUNT(DISTINCT ...).

The paper (§4, "Data Transformation") names approximate functions as key to
the data-pipeline use case and states the ambition to "build distributed
approximate equivalents for all non-linear exact operations". HLL is the
canonical example: constant memory, mergeable across slices (so the
aggregate distributes), with relative error ≈ 1.04/sqrt(2**precision).
"""

from __future__ import annotations

import math

from repro.distribution.hashing import stable_hash


_MASK64 = (1 << 64) - 1


def _mix(h: int) -> int:
    """splitmix64 finalizer: FNV-1a avalanches weakly in its high bits,
    and HLL's register ranks live there."""
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK64
    return h ^ (h >> 31)


class HyperLogLog:
    """A 64-bit HyperLogLog with the standard bias corrections.

    ``precision`` p gives m=2**p one-byte registers; default p=12 is
    4 KiB per sketch and ~1.6% relative error.
    """

    __slots__ = ("precision", "_m", "_registers")

    def __init__(self, precision: int = 12):
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self._m = 1 << precision
        self._registers = bytearray(self._m)

    def add(self, value: object) -> None:
        """Add one value (hashed with the engine's stable 64-bit hash)."""
        h = _mix(stable_hash(value))
        index = h & (self._m - 1)
        remainder = h >> self.precision
        # Rank: position of the first set bit in the remaining 64-p bits.
        rank = 1
        width = 64 - self.precision
        while rank <= width and not (remainder & 1):
            remainder >>= 1
            rank += 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Merge another sketch into this one (register-wise max)."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge HLL(p={other.precision}) into HLL(p={self.precision})"
            )
        for i, r in enumerate(other._registers):
            if r > self._registers[i]:
                self._registers[i] = r
        return self

    def cardinality(self) -> int:
        """Estimate the number of distinct values added."""
        m = self._m
        raw = self._alpha() * m * m / sum(2.0 ** -r for r in self._registers)
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return round(m * math.log(m / zeros))  # linear counting
        return round(raw)

    def _alpha(self) -> float:
        m = self._m
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / m)

    @property
    def size_bytes(self) -> int:
        """Memory the sketch occupies — the constant the exact-vs-approx
        benchmark contrasts with a full distinct-value set."""
        return self._m

    def standard_error(self) -> float:
        """Expected relative error of :meth:`cardinality`."""
        return 1.04 / math.sqrt(self._m)
