"""Uncorrelated subquery expansion.

Scalar subqueries (``(SELECT max(x) FROM t)``) and ``IN (SELECT ...)``
predicates are pre-executed by the session and substituted with literals
before planning — the standard strategy for uncorrelated subqueries in a
warehouse, where they are overwhelmingly dimension lookups. Correlated
subqueries (referencing outer columns) fail inside the inner bind with a
column-not-found error, reported as unsupported.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AnalysisError, ColumnNotFoundError
from repro.sql import ast

#: runner(query) -> rows (list of tuples)
QueryRunner = Callable[[object], list]


def expand_subqueries(
    query: "ast.SelectQuery | ast.SetOperation", run: QueryRunner
) -> None:
    """Replace every subquery expression under *query*, in place."""
    if isinstance(query, ast.SetOperation):
        expand_subqueries(query.left, run)
        expand_subqueries(query.right, run)
        return
    for cte in query.ctes:
        expand_subqueries(cte.query, run)
    if query.from_item is not None:
        _expand_from(query.from_item, run)
    for item in query.items:
        item.expression = _expand_expr(item.expression, run)
    if query.where is not None:
        query.where = _expand_expr(query.where, run)
    query.group_by = [_expand_expr(e, run) for e in query.group_by]
    if query.having is not None:
        query.having = _expand_expr(query.having, run)
    for order in query.order_by:
        order.expression = _expand_expr(order.expression, run)


def expand_in_expression(
    expr: ast.Expression, run: QueryRunner
) -> ast.Expression:
    """Expand subqueries inside a standalone expression (DML WHERE)."""
    return _expand_expr(expr, run)


def _expand_from(item: ast.FromItem, run: QueryRunner) -> None:
    if isinstance(item, ast.SubqueryRef):
        expand_subqueries(item.query, run)
    elif isinstance(item, ast.Join):
        _expand_from(item.left, run)
        _expand_from(item.right, run)
        if item.condition is not None:
            item.condition = _expand_expr(item.condition, run)


def _scalar_result(rows: list, context: str) -> object:
    if not rows:
        return None
    if len(rows) > 1:
        raise AnalysisError(f"{context} returned {len(rows)} rows (max 1)")
    if len(rows[0]) != 1:
        raise AnalysisError(
            f"{context} returned {len(rows[0])} columns (need 1)"
        )
    return rows[0][0]


def _run_inner(query, run: QueryRunner, context: str) -> list:
    try:
        return run(query)
    except ColumnNotFoundError as exc:
        raise AnalysisError(
            f"correlated subqueries are not supported ({context}: {exc})"
        ) from exc


def _expand_expr(expr: ast.Expression, run: QueryRunner) -> ast.Expression:
    if isinstance(expr, ast.ScalarSubquery):
        expand_subqueries(expr.query, run)
        value = _scalar_result(
            _run_inner(expr.query, run, "scalar subquery"), "scalar subquery"
        )
        return ast.Literal(value)
    if isinstance(expr, ast.InExpr):
        operand = _expand_expr(expr.operand, run)
        if expr.subquery is not None:
            expand_subqueries(expr.subquery, run)
            rows = _run_inner(expr.subquery, run, "IN subquery")
            if rows and len(rows[0]) != 1:
                raise AnalysisError(
                    f"IN subquery returned {len(rows[0])} columns (need 1)"
                )
            seen: set = set()
            items: list[ast.Expression] = []
            for (value,) in rows:
                if value not in seen:
                    seen.add(value)
                    items.append(ast.Literal(value))
            return ast.InExpr(operand, items, expr.negated)
        return ast.InExpr(
            operand,
            [_expand_expr(i, run) for i in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op, _expand_expr(expr.left, run), _expand_expr(expr.right, run)
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _expand_expr(expr.operand, run))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            [
                a if isinstance(a, ast.Star) else _expand_expr(a, run)
                for a in expr.args
            ],
            distinct=expr.distinct,
            approximate=expr.approximate,
        )
    if isinstance(expr, ast.CastExpr):
        return ast.CastExpr(
            _expand_expr(expr.operand, run), expr.type_name, expr.type_params
        )
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            [
                (_expand_expr(c, run), _expand_expr(v, run))
                for c, v in expr.whens
            ],
            _expand_expr(expr.default, run) if expr.default is not None else None,
        )
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(
            _expand_expr(expr.operand, run),
            _expand_expr(expr.low, run),
            _expand_expr(expr.high, run),
            expr.negated,
        )
    if isinstance(expr, ast.IsNullExpr):
        return ast.IsNullExpr(_expand_expr(expr.operand, run), expr.negated)
    if isinstance(expr, ast.LikeExpr):
        return ast.LikeExpr(
            _expand_expr(expr.operand, run),
            _expand_expr(expr.pattern, run),
            expr.negated,
            expr.case_insensitive,
        )
    return expr
