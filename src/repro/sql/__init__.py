"""SQL front end: lexer, parser, AST, expression semantics, functions.

The engine speaks the PostgreSQL-flavoured subset Redshift documents:
SELECT with joins/CTEs/grouping/ordering, INSERT, UPDATE, DELETE,
CREATE TABLE (with DISTSTYLE/DISTKEY/SORTKEY/ENCODE), CTAS, DROP, COPY,
ANALYZE, VACUUM, EXPLAIN and transaction control.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import Parser, parse_statement, parse_statements, parse_expression
from repro.sql import ast

__all__ = [
    "Lexer", "Token", "TokenType", "tokenize",
    "Parser", "parse_statement", "parse_statements", "parse_expression",
    "ast",
]
