"""Scalar and aggregate function registry.

Scalar functions propagate NULL (any NULL argument yields NULL) unless the
function is explicitly NULL-handling (COALESCE, NULLIF, NVL). Aggregates
are defined in partial/merge/final form so they distribute: each slice
accumulates a partial state, the leader merges states and finalizes —
exactly the two-phase execution the MPP engine uses.
"""

from __future__ import annotations

import datetime
import decimal
import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.datatypes.coercion import common_type
from repro.datatypes.types import (
    BIGINT,
    DOUBLE,
    INTEGER,
    BOOLEAN,
    SqlType,
    TypeKind,
    varchar_type,
)
from repro.errors import AnalysisError, ExecutionError
from repro.sql.hll import HyperLogLog


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------

@dataclass
class ScalarFunction:
    """One scalar function: implementation plus result typing.

    ``impl`` receives already-evaluated argument values; when
    ``null_propagating`` the registry wrapper returns NULL if any argument
    is NULL without calling ``impl``.
    """

    name: str
    min_args: int
    max_args: int
    impl: Callable[..., object]
    result_type: Callable[[Sequence[SqlType]], SqlType]
    null_propagating: bool = True

    def check_arity(self, count: int) -> None:
        if not self.min_args <= count <= self.max_args:
            expected = (
                str(self.min_args)
                if self.min_args == self.max_args
                else f"{self.min_args}..{self.max_args}"
            )
            raise AnalysisError(
                f"function {self.name}() takes {expected} arguments, got {count}"
            )

    def __call__(self, *args: object) -> object:
        if self.null_propagating and any(a is None for a in args):
            return None
        return self.impl(*args)


def _varchar_result(_: Sequence[SqlType]) -> SqlType:
    return varchar_type(65535)


def _double_result(_: Sequence[SqlType]) -> SqlType:
    return DOUBLE


def _int_result(_: Sequence[SqlType]) -> SqlType:
    return INTEGER


def _bigint_result(_: Sequence[SqlType]) -> SqlType:
    return BIGINT


def _same_as_first(types: Sequence[SqlType]) -> SqlType:
    return types[0]


def _common_result(types: Sequence[SqlType]) -> SqlType:
    result = types[0]
    for t in types[1:]:
        result = common_type(result, t)
    return result


def _substring(s: str, start: int, length: int | None = None) -> str:
    # SQL substring is 1-based; a start before 1 eats into the length.
    begin = max(0, start - 1)
    if length is None:
        return s[begin:]
    if length < 0:
        raise ExecutionError("negative substring length")
    end = max(0, start - 1 + length)
    return s[begin:end]


def _round(value: object, digits: int = 0) -> object:
    if isinstance(value, decimal.Decimal):
        quantum = decimal.Decimal(1).scaleb(-digits)
        return value.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    factor = 10 ** digits
    return math.floor(abs(value) * factor + 0.5) / factor * (1 if value >= 0 else -1)


_DATE_PARTS = frozenset(
    ["year", "quarter", "month", "week", "day", "dow", "doy", "hour", "minute", "second", "epoch"]
)


def _date_part(part: str, value: datetime.date | datetime.datetime) -> object:
    part = part.lower()
    if part not in _DATE_PARTS:
        raise ExecutionError(f"unknown date part {part!r}")
    if part == "year":
        return value.year
    if part == "quarter":
        return (value.month - 1) // 3 + 1
    if part == "month":
        return value.month
    if part == "week":
        return value.isocalendar()[1]
    if part == "day":
        return value.day
    if part == "dow":
        return value.isoweekday() % 7  # Sunday = 0, PostgreSQL convention
    if part == "doy":
        return value.timetuple().tm_yday
    ts = _as_timestamp(value)
    if part == "hour":
        return ts.hour
    if part == "minute":
        return ts.minute
    if part == "second":
        return ts.second
    return ts.timestamp()  # epoch


def _as_timestamp(value: datetime.date | datetime.datetime) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    return datetime.datetime(value.year, value.month, value.day)


def _date_trunc(part: str, value: datetime.date | datetime.datetime) -> datetime.datetime:
    ts = _as_timestamp(value)
    part = part.lower()
    if part == "year":
        return ts.replace(month=1, day=1, hour=0, minute=0, second=0, microsecond=0)
    if part == "quarter":
        month = 3 * ((ts.month - 1) // 3) + 1
        return ts.replace(month=month, day=1, hour=0, minute=0, second=0, microsecond=0)
    if part == "month":
        return ts.replace(day=1, hour=0, minute=0, second=0, microsecond=0)
    if part == "week":
        monday = ts - datetime.timedelta(days=ts.weekday())
        return monday.replace(hour=0, minute=0, second=0, microsecond=0)
    if part == "day":
        return ts.replace(hour=0, minute=0, second=0, microsecond=0)
    if part == "hour":
        return ts.replace(minute=0, second=0, microsecond=0)
    if part == "minute":
        return ts.replace(second=0, microsecond=0)
    if part == "second":
        return ts.replace(microsecond=0)
    raise ExecutionError(f"unknown date_trunc unit {part!r}")


def _dateadd(part: str, amount: int, value: datetime.date | datetime.datetime) -> datetime.datetime:
    ts = _as_timestamp(value)
    part = part.lower()
    if part == "year":
        return ts.replace(year=ts.year + amount)
    if part == "month":
        month0 = ts.month - 1 + amount
        year = ts.year + month0 // 12
        month = month0 % 12 + 1
        day = min(ts.day, _days_in_month(year, month))
        return ts.replace(year=year, month=month, day=day)
    deltas = {
        "week": datetime.timedelta(weeks=amount),
        "day": datetime.timedelta(days=amount),
        "hour": datetime.timedelta(hours=amount),
        "minute": datetime.timedelta(minutes=amount),
        "second": datetime.timedelta(seconds=amount),
    }
    if part not in deltas:
        raise ExecutionError(f"unknown dateadd unit {part!r}")
    return ts + deltas[part]


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.date(year, month, 1)).days


def _datediff(part: str, start: object, end: object) -> int:
    s, e = _as_timestamp(start), _as_timestamp(end)
    part = part.lower()
    if part == "year":
        return e.year - s.year
    if part == "quarter":
        return (e.year - s.year) * 4 + ((e.month - 1) // 3 - (s.month - 1) // 3)
    if part == "month":
        return (e.year - s.year) * 12 + (e.month - s.month)
    seconds = (e - s).total_seconds()
    divisors = {"week": 604800, "day": 86400, "hour": 3600, "minute": 60, "second": 1}
    if part not in divisors:
        raise ExecutionError(f"unknown datediff unit {part!r}")
    return int(seconds // divisors[part])


def _coalesce(*args: object) -> object:
    for a in args:
        if a is not None:
            return a
    return None


def _nullif(a: object, b: object) -> object:
    if a is not None and b is not None and a == b:
        return None
    return a


def _greatest(*args: object) -> object:
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _least(*args: object) -> object:
    present = [a for a in args if a is not None]
    return min(present) if present else None


_SCALARS: dict[str, ScalarFunction] = {}


def _register(
    name: str,
    min_args: int,
    max_args: int,
    impl: Callable[..., object],
    result_type: Callable[[Sequence[SqlType]], SqlType],
    null_propagating: bool = True,
) -> None:
    _SCALARS[name] = ScalarFunction(
        name, min_args, max_args, impl, result_type, null_propagating
    )


_register("upper", 1, 1, str.upper, _varchar_result)
_register("lower", 1, 1, str.lower, _varchar_result)
_register("length", 1, 1, len, _int_result)
_register("char_length", 1, 1, len, _int_result)
_register("trim", 1, 1, str.strip, _varchar_result)
_register("ltrim", 1, 1, str.lstrip, _varchar_result)
_register("rtrim", 1, 1, str.rstrip, _varchar_result)
_register("replace", 3, 3, lambda s, a, b: s.replace(a, b), _varchar_result)
_register("reverse", 1, 1, lambda s: s[::-1], _varchar_result)
_register("substring", 2, 3, _substring, _varchar_result)
_register("substr", 2, 3, _substring, _varchar_result)
_register("left", 2, 2, lambda s, n: s[:max(0, n)], _varchar_result)
_register("right", 2, 2, lambda s, n: s[-n:] if n > 0 else "", _varchar_result)
_register("strpos", 2, 2, lambda s, sub: s.find(sub) + 1, _int_result)
_register("concat", 2, 2, lambda a, b: str(a) + str(b), _varchar_result)
_register("repeat", 2, 2, lambda s, n: s * max(0, n), _varchar_result)
_register("lpad", 2, 3, lambda s, n, fill=" ": s.rjust(n, fill)[:n], _varchar_result)
_register("rpad", 2, 3, lambda s, n, fill=" ": s.ljust(n, fill)[:n], _varchar_result)
_register("initcap", 1, 1, lambda s: s.title(), _varchar_result)

_register("abs", 1, 1, abs, _same_as_first)
_register("sign", 1, 1, lambda x: (x > 0) - (x < 0), _int_result)
_register("round", 1, 2, _round, _same_as_first)
_register("floor", 1, 1, lambda x: math.floor(x), _bigint_result)
_register("ceil", 1, 1, lambda x: math.ceil(x), _bigint_result)
_register("ceiling", 1, 1, lambda x: math.ceil(x), _bigint_result)
_register("mod", 2, 2, lambda a, b: math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else int(math.fmod(a, b)), _same_as_first)
_register("power", 2, 2, lambda a, b: float(a) ** float(b), _double_result)
_register("sqrt", 1, 1, lambda x: math.sqrt(x), _double_result)
_register("exp", 1, 1, math.exp, _double_result)
_register("ln", 1, 1, lambda x: math.log(x), _double_result)
_register("log", 1, 1, lambda x: math.log10(x), _double_result)

_register("date_part", 2, 2, _date_part, _double_result)
_register("date_trunc", 2, 2, _date_trunc, lambda t: SqlType(TypeKind.TIMESTAMP))
_register("dateadd", 3, 3, _dateadd, lambda t: SqlType(TypeKind.TIMESTAMP))
_register("datediff", 3, 3, _datediff, _bigint_result)

_register("coalesce", 1, 64, _coalesce, _common_result, null_propagating=False)
_register("nvl", 2, 2, _coalesce, _common_result, null_propagating=False)
_register("nullif", 2, 2, _nullif, _same_as_first, null_propagating=False)
_register("greatest", 1, 64, _greatest, _common_result, null_propagating=False)
_register("least", 1, 64, _least, _common_result, null_propagating=False)


def scalar_function(name: str) -> ScalarFunction:
    """Look up a scalar function; raises AnalysisError if unknown."""
    fn = _SCALARS.get(name.lower())
    if fn is None:
        raise AnalysisError(f"unknown function {name}()")
    return fn


def is_scalar_function(name: str) -> bool:
    return name.lower() in _SCALARS


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Aggregate:
    """Distributed aggregate: per-slice partials merged at the leader."""

    name: str

    def result_type(self, input_type: SqlType | None) -> SqlType:
        raise NotImplementedError

    def create(self) -> object:
        """Fresh partial state."""
        raise NotImplementedError

    def accumulate(self, state: object, value: object) -> object:
        """Fold one input value into a partial state; returns the state."""
        raise NotImplementedError

    def accumulate_many(self, state: object, values) -> object:
        """Fold a whole value vector into a partial state (the vectorized
        executor's per-batch path). Subclasses override when a bulk form
        beats the per-value loop."""
        accumulate = self.accumulate
        for value in values:
            state = accumulate(state, value)
        return state

    def accumulate_run(self, state: object, value: object, count: int) -> object:
        """Fold a run of *count* equal non-null values (operate-on-compressed
        RLE aggregation). The default repeats :meth:`accumulate` so any
        aggregate stays bit-identical; subclasses override only where the
        closed form is exact (never where it could change float ordering).
        """
        accumulate = self.accumulate
        for _ in range(count):
            state = accumulate(state, value)
        return state

    def merge(self, left: object, right: object) -> object:
        """Combine two partial states."""
        raise NotImplementedError

    def finalize(self, state: object) -> object:
        """Produce the SQL result from a merged state."""
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(x): number of non-null inputs (COUNT(*) feeds a dummy 1)."""

    name = "count"

    def result_type(self, input_type):
        return BIGINT

    def create(self):
        return 0

    def accumulate(self, state, value):
        return state + (value is not None)

    def accumulate_many(self, state, values):
        return state + sum(1 for value in values if value is not None)

    def accumulate_run(self, state, value, count):
        return state + (count if value is not None else 0)

    def merge(self, left, right):
        return left + right

    def finalize(self, state):
        return state


class SumAggregate(Aggregate):
    name = "sum"

    def result_type(self, input_type):
        if input_type is None or input_type.is_integer:
            return BIGINT
        return input_type

    def create(self):
        return None  # SUM of no rows is NULL

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def accumulate_many(self, state, values):
        present = [value for value in values if value is not None]
        if not present:
            return state
        total = sum(present[1:], present[0])
        return total if state is None else state + total

    def accumulate_run(self, state, value, count):
        if value is None:
            return state
        if type(value) is int:
            # value*count is exact for integers; floats keep the per-value
            # loop (addition order changes the rounded result).
            total = value * count
            return total if state is None else state + total
        return super().accumulate_run(state, value, count)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def finalize(self, state):
        return state


class AvgAggregate(Aggregate):
    name = "avg"

    def result_type(self, input_type):
        return DOUBLE

    def create(self):
        return (0, 0.0)

    def accumulate(self, state, value):
        if value is None:
            return state
        n, total = state
        return (n + 1, total + float(value))

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state):
        n, total = state
        return total / n if n else None


class MinAggregate(Aggregate):
    name = "min"

    def result_type(self, input_type):
        return input_type or DOUBLE

    def create(self):
        return None

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None or value < state else state

    def accumulate_many(self, state, values):
        present = [value for value in values if value is not None]
        if not present:
            return state
        low = min(present)
        return low if state is None or low < state else state

    def accumulate_run(self, state, value, count):
        # min is idempotent: a run of equal values folds to one visit.
        return self.accumulate(state, value)

    def merge(self, left, right):
        return self.accumulate(left, right)

    def finalize(self, state):
        return state


class MaxAggregate(MinAggregate):
    name = "max"

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None or value > state else state

    def accumulate_many(self, state, values):
        present = [value for value in values if value is not None]
        if not present:
            return state
        high = max(present)
        return high if state is None or high > state else state


class StddevAggregate(Aggregate):
    """Sample standard deviation via a mergeable (n, mean, M2) state
    (Chan et al. parallel variance)."""

    name = "stddev"
    _final = staticmethod(lambda var: math.sqrt(var))

    def result_type(self, input_type):
        return DOUBLE

    def create(self):
        return (0, 0.0, 0.0)

    def accumulate(self, state, value):
        if value is None:
            return state
        n, mean, m2 = state
        n += 1
        delta = float(value) - mean
        mean += delta / n
        m2 += delta * (float(value) - mean)
        return (n, mean, m2)

    def merge(self, left, right):
        n1, mean1, m21 = left
        n2, mean2, m22 = right
        if n1 == 0:
            return right
        if n2 == 0:
            return left
        n = n1 + n2
        delta = mean2 - mean1
        mean = mean1 + delta * n2 / n
        m2 = m21 + m22 + delta * delta * n1 * n2 / n
        return (n, mean, m2)

    def finalize(self, state):
        n, _mean, m2 = state
        if n < 2:
            return None
        return self._final(m2 / (n - 1))


class VarianceAggregate(StddevAggregate):
    name = "variance"
    _final = staticmethod(lambda var: var)


class ApproxCountDistinctAggregate(Aggregate):
    """APPROXIMATE COUNT(DISTINCT x): HyperLogLog, merged across slices."""

    name = "approx_count_distinct"

    def __init__(self, precision: int = 12):
        self._precision = precision

    def result_type(self, input_type):
        return BIGINT

    def create(self):
        return HyperLogLog(self._precision)

    def accumulate(self, state, value):
        if value is not None:
            state.add(value)
        return state

    def merge(self, left, right):
        return left.merge(right)

    def finalize(self, state):
        return state.cardinality()


class DistinctAggregate(Aggregate):
    """Wrapper implementing COUNT/SUM/AVG(DISTINCT x): the partial state is
    the *set* of distinct values (merged set-union at the leader), and the
    wrapped aggregate runs over the final set. This is the exact, memory-
    hungry baseline the HLL benchmark contrasts."""

    def __init__(self, inner: Aggregate):
        self._inner = inner
        self.name = f"{inner.name}_distinct"

    def result_type(self, input_type):
        return self._inner.result_type(input_type)

    def create(self):
        return set()

    def accumulate(self, state, value):
        if value is not None:
            state.add(value)
        return state

    def merge(self, left, right):
        left |= right
        return left

    def finalize(self, state):
        inner_state = self._inner.create()
        for value in state:
            inner_state = self._inner.accumulate(inner_state, value)
        return self._inner.finalize(inner_state)


_AGGREGATES: dict[str, Callable[[], Aggregate]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "avg": AvgAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "stddev": StddevAggregate,
    "stddev_samp": StddevAggregate,
    "variance": VarianceAggregate,
    "var_samp": VarianceAggregate,
}


def is_aggregate_function(name: str) -> bool:
    return name.lower() in _AGGREGATES


def make_aggregate(
    name: str, distinct: bool = False, approximate: bool = False
) -> Aggregate:
    """Instantiate the aggregate for a parsed call.

    APPROXIMATE COUNT(DISTINCT x) maps to the HLL aggregate; any other
    DISTINCT aggregate gets the exact set-based wrapper.
    """
    lowered = name.lower()
    factory = _AGGREGATES.get(lowered)
    if factory is None:
        raise AnalysisError(f"unknown aggregate function {name}()")
    if approximate:
        if lowered != "count" or not distinct:
            raise AnalysisError(
                "APPROXIMATE is only supported for COUNT(DISTINCT ...)"
            )
        return ApproxCountDistinctAggregate()
    aggregate = factory()
    if distinct:
        return DistinctAggregate(aggregate)
    return aggregate
