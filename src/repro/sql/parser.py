"""Recursive-descent SQL parser.

Grammar follows the PostgreSQL subset Redshift supports (see
:mod:`repro.sql.ast` for the node inventory). Expressions use precedence
climbing: OR < AND < NOT < comparison/predicates < additive < multiplicative
< unary < postfix cast.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}

#: Keywords that are also callable as functions (aggregates).
_KEYWORD_FUNCTIONS = {"count", "sum", "avg", "min", "max", "left", "right"}

#: Identifiers recognised as typed-literal prefixes: DATE '2015-01-01'.
_TYPED_LITERALS = {"date", "timestamp"}


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # ---- token helpers ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.text in words

    def _at_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.type is TokenType.OPERATOR and token.text in ops

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._at_keyword(*words):
            return self._advance()
        return None

    def _accept_operator(self, *ops: str) -> Token | None:
        if self._at_operator(*ops):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._accept_keyword(word)
        if token is None:
            raise ParseError(
                f"expected {word.upper()}, found {self._peek()!r}"
            )
        return token

    def _expect_operator(self, op: str) -> Token:
        token = self._accept_operator(op)
        if token is None:
            raise ParseError(f"expected {op!r}, found {self._peek()!r}")
        return token

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        raise ParseError(f"expected identifier, found {token!r}")

    def _expect_name(self) -> str:
        """Identifier or non-reserved keyword usable as a name."""
        token = self._peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return token.text
        raise ParseError(f"expected name, found {token!r}")

    def _expect_integer(self) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and "." not in token.text:
            self._advance()
            return int(token.text)
        raise ParseError(f"expected integer, found {token!r}")

    # ---- entry points -------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        """Parse a semicolon-separated script."""
        statements: list[ast.Statement] = []
        while True:
            while self._accept_operator(";"):
                pass
            if self._peek().type is TokenType.EOF:
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise ParseError(f"expected a statement, found {token!r}")
        word = token.text
        if word in ("select", "with"):
            return ast.SelectStatement(self._parse_select_query())
        handlers = {
            "create": self._parse_create,
            "drop": self._parse_drop,
            "insert": self._parse_insert,
            "delete": self._parse_delete,
            "update": self._parse_update,
            "copy": self._parse_copy,
            "analyze": self._parse_analyze,
            "vacuum": self._parse_vacuum,
            "explain": self._parse_explain,
            "begin": self._parse_begin,
            "commit": self._parse_commit,
            "rollback": self._parse_rollback,
            "set": self._parse_set,
        }
        handler = handlers.get(word)
        if handler is None:
            raise ParseError(f"unsupported statement starting with {word.upper()}")
        return handler()

    # ---- SELECT ---------------------------------------------------------------

    def _parse_select_query(self) -> "ast.SelectQuery | ast.SetOperation":
        """A full query expression: select core, set operations, then
        ORDER BY / LIMIT / OFFSET applying to the combined result."""
        query: ast.SelectQuery | ast.SetOperation = self._parse_select_core()
        while self._at_keyword("union", "intersect", "except"):
            op = self._advance().text
            use_all = bool(self._accept_keyword("all"))
            if not use_all:
                self._accept_keyword("distinct")
            if self._at_operator("("):
                self._advance()
                right: ast.SelectQuery | ast.SetOperation = (
                    self._parse_select_query()
                )
                self._expect_operator(")")
            else:
                right = self._parse_select_core()
            query = ast.SetOperation(op=op, all=use_all, left=query, right=right)

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_operator(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("limit"):
            limit = self._expect_integer()
        offset = None
        if self._accept_keyword("offset"):
            offset = self._expect_integer()

        query.order_by = order_by or query.order_by
        if limit is not None:
            query.limit = limit
        if offset is not None:
            query.offset = offset
        return query

    def _parse_select_core(self) -> ast.SelectQuery:
        ctes: list[ast.CommonTableExpr] = []
        if self._accept_keyword("with"):
            while True:
                name = self._expect_ident()
                self._expect_keyword("as")
                self._expect_operator("(")
                query = self._parse_select_query()
                self._expect_operator(")")
                ctes.append(ast.CommonTableExpr(name, query))
                if not self._accept_operator(","):
                    break
        self._expect_keyword("select")
        distinct = False
        if self._accept_keyword("distinct"):
            distinct = True
        else:
            self._accept_keyword("all")

        items = [self._parse_select_item()]
        while self._accept_operator(","):
            items.append(self._parse_select_item())

        from_item: ast.FromItem | None = None
        if self._accept_keyword("from"):
            from_item = self._parse_from()

        where = None
        if self._accept_keyword("where"):
            where = self.parse_expression()

        group_by: list[ast.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expression())
            while self._accept_operator(","):
                group_by.append(self.parse_expression())

        having = None
        if self._accept_keyword("having"):
            having = self.parse_expression()

        # ORDER BY / LIMIT / OFFSET belong to the full query expression
        # (including any set operations) and are parsed by the caller.
        return ast.SelectQuery(
            items=items,
            from_item=from_item,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            ctes=ctes,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self._at_operator("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, descending)

    def _parse_from(self) -> ast.FromItem:
        item = self._parse_from_primary()
        while True:
            kind: ast.JoinKind | None = None
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                kind = ast.JoinKind.CROSS
            elif self._at_keyword("inner", "join"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                kind = ast.JoinKind.INNER
            elif self._at_keyword("left", "right", "full"):
                # Only a join keyword if followed by [OUTER] JOIN; otherwise
                # it's LEFT(...)/RIGHT(...) the function — not valid here,
                # but be conservative and check.
                side = self._peek().text
                nxt = self._peek(1)
                if nxt.matches_keyword("join") or nxt.matches_keyword("outer"):
                    self._advance()
                    self._accept_keyword("outer")
                    self._expect_keyword("join")
                    kind = ast.JoinKind[side.upper()]
            if kind is None:
                if self._accept_operator(","):
                    right = self._parse_from_primary()
                    item = ast.Join(ast.JoinKind.CROSS, item, right, None)
                    continue
                return item
            right = self._parse_from_primary()
            condition = None
            if kind is not ast.JoinKind.CROSS:
                self._expect_keyword("on")
                condition = self.parse_expression()
            item = ast.Join(kind, item, right, condition)

    def _parse_from_primary(self) -> ast.FromItem:
        if self._accept_operator("("):
            query = self._parse_select_query()
            self._expect_operator(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return ast.SubqueryRef(query, alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.TableRef(name, alias)

    # ---- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            if self._at_operator(*_COMPARISON_OPS):
                op = self._advance().text
                if op == "!=":
                    op = "<>"
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right)
                continue
            if self._at_keyword("is"):
                self._advance()
                negated = bool(self._accept_keyword("not"))
                self._expect_keyword("null")
                left = ast.IsNullExpr(left, negated)
                continue
            negated = False
            if self._at_keyword("not") and self._peek(1).type is TokenType.KEYWORD \
                    and self._peek(1).text in ("in", "between", "like", "ilike"):
                self._advance()
                negated = True
            if self._accept_keyword("in"):
                self._expect_operator("(")
                if self._at_keyword("select", "with"):
                    subquery = self._parse_select_query()
                    self._expect_operator(")")
                    left = ast.InExpr(left, [], negated, subquery=subquery)
                    continue
                items = [self.parse_expression()]
                while self._accept_operator(","):
                    items.append(self.parse_expression())
                self._expect_operator(")")
                left = ast.InExpr(left, items, negated)
                continue
            if self._accept_keyword("between"):
                low = self._parse_additive()
                self._expect_keyword("and")
                high = self._parse_additive()
                left = ast.BetweenExpr(left, low, high, negated)
                continue
            if self._at_keyword("like", "ilike"):
                ci = self._advance().text == "ilike"
                pattern = self._parse_additive()
                left = ast.LikeExpr(left, pattern, negated, ci)
                continue
            if negated:
                raise ParseError(
                    f"expected IN, BETWEEN or LIKE after NOT, found {self._peek()!r}"
                )
            return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._at_operator(*_ADDITIVE_OPS):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._at_operator(*_MULTIPLICATIVE_OPS):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expr = self._parse_primary()
        while self._accept_operator("::"):
            type_name, params = self._parse_type_name()
            expr = ast.CastExpr(expr, type_name, params)
        return expr

    def _parse_type_name(self) -> tuple[str, tuple[int, ...]]:
        name = self._expect_name()
        if name == "double":
            # DOUBLE PRECISION is two words
            if self._peek().type is TokenType.IDENT and self._peek().text == "precision":
                self._advance()
                name = "double precision"
        if name == "character" and self._peek().type is TokenType.IDENT \
                and self._peek().text == "varying":
            self._advance()
            name = "character varying"
        params: tuple[int, ...] = ()
        if self._accept_operator("("):
            values = [self._expect_integer()]
            while self._accept_operator(","):
                values.append(self._expect_integer())
            self._expect_operator(")")
            params = tuple(values)
        return name, params

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)

        if token.matches_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.matches_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("false"):
            self._advance()
            return ast.Literal(False)

        if token.matches_keyword("case"):
            return self._parse_case()

        if token.matches_keyword("cast"):
            self._advance()
            self._expect_operator("(")
            operand = self.parse_expression()
            self._expect_keyword("as")
            type_name, params = self._parse_type_name()
            self._expect_operator(")")
            return ast.CastExpr(operand, type_name, params)

        if token.matches_keyword("approximate"):
            self._advance()
            call = self._parse_primary()
            if not isinstance(call, ast.FunctionCall):
                raise ParseError("APPROXIMATE must precede a function call")
            call.approximate = True
            return call

        if token.type is TokenType.KEYWORD and token.text in _KEYWORD_FUNCTIONS:
            if self._peek(1).type is TokenType.OPERATOR and self._peek(1).text == "(":
                self._advance()
                return self._parse_call(token.text)

        if self._accept_operator("("):
            if self._at_keyword("select", "with"):
                query = self._parse_select_query()
                self._expect_operator(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expression()
            self._expect_operator(")")
            return expr

        if token.type is TokenType.IDENT:
            # Typed literal: DATE '2015-01-01'
            if token.text in _TYPED_LITERALS and self._peek(1).type is TokenType.STRING:
                self._advance()
                value = self._advance().text
                return ast.Literal(value, type_name=token.text)
            self._advance()
            # Function call?
            if self._at_operator("(") :
                return self._parse_call(token.text)
            # Qualified reference: t.col or t.*
            if self._at_operator("."):
                self._advance()
                if self._accept_operator("*"):
                    return ast.Star(table=token.text)
                column = self._expect_name()
                return ast.ColumnRef(column, table=token.text)
            return ast.ColumnRef(token.text)

        raise ParseError(f"unexpected token {token!r} in expression")

    def _parse_call(self, name: str) -> ast.Expression:
        self._expect_operator("(")
        distinct = bool(self._accept_keyword("distinct"))
        args: list[ast.Expression] = []
        if self._accept_operator("*"):
            args.append(ast.Star())
        elif not self._at_operator(")"):
            args.append(self.parse_expression())
            while self._accept_operator(","):
                args.append(self.parse_expression())
        self._expect_operator(")")
        return ast.FunctionCall(name.lower(), args, distinct=distinct)

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("case")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        # Simple CASE (CASE expr WHEN v THEN ...) is desugared to searched.
        subject: ast.Expression | None = None
        if not self._at_keyword("when"):
            subject = self.parse_expression()
        while self._accept_keyword("when"):
            cond = self.parse_expression()
            if subject is not None:
                cond = ast.BinaryOp("=", subject, cond)
            self._expect_keyword("then")
            value = self.parse_expression()
            whens.append((cond, value))
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch")
        default = None
        if self._accept_keyword("else"):
            default = self.parse_expression()
        self._expect_keyword("end")
        return ast.CaseExpr(whens, default)

    # ---- DDL / DML ------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("create")
        self._expect_keyword("table")
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        name = self._expect_ident()

        if self._at_operator("("):
            return self._parse_create_columns(name, if_not_exists)
        return self._parse_ctas(name)

    def _parse_create_columns(
        self, name: str, if_not_exists: bool
    ) -> ast.CreateTableStatement:
        self._expect_operator("(")
        columns: list[ast.ColumnDef] = []
        while True:
            columns.append(self._parse_column_def())
            if not self._accept_operator(","):
                break
        self._expect_operator(")")
        diststyle, distkey, sortkey, interleaved = self._parse_table_attrs()
        return ast.CreateTableStatement(
            name=name,
            columns=columns,
            diststyle=diststyle,
            distkey=distkey,
            sortkey=sortkey,
            sortkey_interleaved=interleaved,
            if_not_exists=if_not_exists,
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_name, params = self._parse_type_name()
        encode = None
        not_null = False
        while True:
            if self._accept_keyword("encode"):
                encode = self._expect_name()
            elif self._at_keyword("not") and self._peek(1).matches_keyword("null"):
                self._advance()
                self._advance()
                not_null = True
            elif self._accept_keyword("null"):
                pass  # explicit NULLable, the default
            elif self._at_keyword("primary", "unique", "references"):
                # Accept and ignore constraint syntax: Redshift treats these
                # as planner hints, not enforced constraints.
                self._skip_constraint()
            else:
                break
        return ast.ColumnDef(name, type_name, params, encode, not_null)

    def _skip_constraint(self) -> None:
        if self._accept_keyword("primary"):
            self._expect_keyword("key")
        elif self._accept_keyword("unique"):
            pass
        elif self._accept_keyword("references"):
            self._expect_ident()
            if self._accept_operator("("):
                self._expect_name()
                self._expect_operator(")")

    def _parse_table_attrs(
        self,
    ) -> tuple[str, str | None, list[str], bool]:
        diststyle = "even"
        distkey: str | None = None
        sortkey: list[str] = []
        interleaved = False
        while True:
            if self._accept_keyword("diststyle"):
                token = self._peek()
                if token.matches_keyword("all"):
                    self._advance()
                    diststyle = "all"
                elif token.matches_keyword("key"):
                    self._advance()
                    diststyle = "key"
                elif token.type is TokenType.IDENT and token.text == "even":
                    self._advance()
                    diststyle = "even"
                else:
                    raise ParseError(
                        f"expected EVEN, KEY or ALL after DISTSTYLE, found {token!r}"
                    )
            elif self._accept_keyword("distkey"):
                self._expect_operator("(")
                distkey = self._expect_ident()
                self._expect_operator(")")
                diststyle = "key"
            elif self._at_keyword("interleaved"):
                self._advance()
                interleaved = True
                self._expect_keyword("sortkey")
                sortkey = self._parse_name_list()
            elif self._accept_keyword("sortkey"):
                sortkey = self._parse_name_list()
            else:
                break
        return diststyle, distkey, sortkey, interleaved

    def _parse_name_list(self) -> list[str]:
        self._expect_operator("(")
        names = [self._expect_ident()]
        while self._accept_operator(","):
            names.append(self._expect_ident())
        self._expect_operator(")")
        return names

    def _parse_ctas(self, name: str) -> ast.CreateTableAsStatement:
        diststyle, distkey, sortkey, _ = self._parse_table_attrs()
        self._expect_keyword("as")
        query = self._parse_select_query()
        return ast.CreateTableAsStatement(
            name=name,
            query=query,
            diststyle=diststyle,
            distkey=distkey,
            sortkey=sortkey,
        )

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        return ast.DropTableStatement(self._expect_ident(), if_exists)

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns: list[str] = []
        if self._at_operator("("):
            columns = self._parse_name_list()
        if self._accept_keyword("values"):
            rows: list[list[ast.Expression]] = []
            while True:
                self._expect_operator("(")
                row = [self.parse_expression()]
                while self._accept_operator(","):
                    row.append(self.parse_expression())
                self._expect_operator(")")
                rows.append(row)
                if not self._accept_operator(","):
                    break
            return ast.InsertStatement(table, columns, rows=rows)
        query = self._parse_select_query()
        return ast.InsertStatement(table, columns, query=query)

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("where"):
            where = self.parse_expression()
        return ast.DeleteStatement(table, where)

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self._expect_ident()
            self._expect_operator("=")
            assignments.append((column, self.parse_expression()))
            if not self._accept_operator(","):
                break
        where = None
        if self._accept_keyword("where"):
            where = self.parse_expression()
        return ast.UpdateStatement(table, assignments, where)

    def _parse_copy(self) -> ast.CopyStatement:
        self._expect_keyword("copy")
        table = self._expect_ident()
        columns: list[str] = []
        if self._at_operator("("):
            columns = self._parse_name_list()
        self._expect_keyword("from")
        source_token = self._peek()
        if source_token.type is not TokenType.STRING:
            raise ParseError(
                f"COPY source must be a quoted string, found {source_token!r}"
            )
        self._advance()
        options: dict[str, object] = {}
        while True:
            token = self._peek()
            if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                break
            if token.text in ("null",):
                self._advance()
                self._accept_keyword("as")
                options["null"] = self._expect_string()
            elif token.text in ("delimiter", "region", "format", "credentials"):
                self._advance()
                self._accept_keyword("as")
                options[token.text] = self._expect_string()
            elif token.text in ("gzip", "json", "encrypted", "ssh"):
                self._advance()
                options[token.text] = True
            elif token.text in ("compupdate", "statupdate"):
                self._advance()
                options[token.text] = self._parse_on_off()
            else:
                break
        return ast.CopyStatement(table, source_token.text, columns, options)

    def _expect_string(self) -> str:
        token = self._peek()
        if token.type is not TokenType.STRING:
            raise ParseError(f"expected string literal, found {token!r}")
        self._advance()
        return token.text

    def _parse_on_off(self) -> bool:
        token = self._peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD) and token.text in (
            "on", "off", "true", "false",
        ):
            self._advance()
            return token.text in ("on", "true")
        raise ParseError(f"expected ON or OFF, found {token!r}")

    def _parse_analyze(self) -> ast.AnalyzeStatement:
        self._expect_keyword("analyze")
        compression = bool(self._accept_keyword("compression"))
        table = None
        if self._peek().type is TokenType.IDENT:
            table = self._advance().text
        return ast.AnalyzeStatement(table, compression)

    def _parse_vacuum(self) -> ast.VacuumStatement:
        self._expect_keyword("vacuum")
        reindex = bool(self._accept_keyword("reindex"))
        table = None
        if self._peek().type is TokenType.IDENT:
            table = self._advance().text
        return ast.VacuumStatement(table, reindex)

    def _parse_explain(self) -> ast.ExplainStatement:
        self._expect_keyword("explain")
        analyze = bool(self._accept_keyword("analyze"))
        return ast.ExplainStatement(self.parse_statement(), analyze=analyze)

    def _parse_begin(self) -> ast.BeginStatement:
        self._expect_keyword("begin")
        self._accept_keyword("transaction") or self._accept_keyword("work")
        return ast.BeginStatement()

    def _parse_commit(self) -> ast.CommitStatement:
        self._expect_keyword("commit")
        self._accept_keyword("transaction") or self._accept_keyword("work")
        return ast.CommitStatement()

    def _parse_rollback(self) -> ast.RollbackStatement:
        self._expect_keyword("rollback")
        self._accept_keyword("transaction") or self._accept_keyword("work")
        return ast.RollbackStatement()

    def _parse_set(self) -> ast.SetStatement:
        """``SET <name> = <value>`` / ``SET <name> TO <value>``."""
        self._expect_keyword("set")
        name = self._expect_name()
        if not self._accept_operator("="):
            token = self._peek()
            if (
                token.type in (TokenType.IDENT, TokenType.KEYWORD)
                and token.text.lower() == "to"
            ):
                self._advance()
            else:
                raise ParseError(f"expected = or TO, found {token!r}")
        token = self._peek()
        if token.type in (
            TokenType.IDENT,
            TokenType.KEYWORD,
            TokenType.STRING,
            TokenType.NUMBER,
        ):
            self._advance()
            return ast.SetStatement(name=name, value=token.text)
        raise ParseError(f"expected a value, found {token!r}")

    def expect_eof(self) -> None:
        self._accept_operator(";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input: {token!r}")


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    parser = Parser(text)
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


def parse_statements(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated script into a statement list."""
    return Parser(text).parse_statements()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and the REPL helper)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    parser.expect_eof()
    return expr
