"""The compiled executor: per-query Python code generation.

"Query processing within Amazon Redshift begins with query plan generation
and compilation to C++ and machine code at the leader node. The use of
query compilation adds a fixed overhead per query that ... is generally
amortized by the tighter execution at compute nodes vs. the overhead of
execution in a general-purpose set of executor functions" (paper §2.1).

This executor reproduces that design point in Python: each pipeline
(scan → filters → joins' probe sides → projection → aggregation) is fused
into one generated function, compiled with ``compile()`` — replacing the
Volcano executor's per-row generator and closure dispatch with straight
loops over local variables. The fixed compile cost and the per-row win are
both real and measured (experiment a2).

Blocking operators (hash-table builds, exchanges, sorts, limits) run in
the driver, like the Volcano executor, so the two executors move identical
bytes over the interconnect and read identical blocks.

Operate-on-compressed scans (DESIGN.md §13) are a vectorized-engine
concept: this executor's generated loops are row-at-a-time, so its scans
take the decoded path — the universal fallback of the encoded-kernel
contract — and ``SET enable_encoded_scan`` does not change what compiled
queries read or return. That asymmetry is exactly what the four-way
parity suites pin down.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ExecutionError
from repro.exec import exchange
from repro.exec.context import ExecutionContext
from repro.exec.spill import SpillableHashTable
from repro.exec.volcano import VolcanoExecutor, sort_rows
from repro.plan.physical import (
    PhysicalAggregate,
    PhysicalFilter,
    PhysicalHashJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalScan,
    JoinDistribution,
)
from repro.sql import ast
from repro.sql.expressions import (
    cast_value,
    literal_value,
    sql_add,
    sql_and,
    sql_concat,
    sql_div,
    sql_eq,
    sql_ge,
    sql_gt,
    sql_in,
    sql_le,
    sql_like,
    sql_lt,
    sql_mod,
    sql_mul,
    sql_ne,
    sql_neg,
    sql_not,
    sql_or,
    sql_sub,
)
from repro.sql.functions import scalar_function

_BINARY_HELPERS = {
    "=": "sql_eq", "<>": "sql_ne", "<": "sql_lt", "<=": "sql_le",
    ">": "sql_gt", ">=": "sql_ge",
    "+": "sql_add", "-": "sql_sub", "*": "sql_mul", "/": "sql_div",
    "%": "sql_mod", "||": "sql_concat",
    "AND": "sql_and", "OR": "sql_or",
}

_RUNTIME = {
    "sql_eq": sql_eq, "sql_ne": sql_ne, "sql_lt": sql_lt, "sql_le": sql_le,
    "sql_gt": sql_gt, "sql_ge": sql_ge, "sql_add": sql_add,
    "sql_sub": sql_sub, "sql_mul": sql_mul, "sql_div": sql_div,
    "sql_mod": sql_mod, "sql_concat": sql_concat, "sql_and": sql_and,
    "sql_or": sql_or, "sql_not": sql_not, "sql_neg": sql_neg,
    "sql_like": sql_like, "sql_in": sql_in, "cast_value": cast_value,
}


import re as _re

_IS_INDEXED = _re.compile(r"_\w+\[\d+\]")

_COMPARISON_OPS = frozenset(["=", "<>", "<", "<=", ">", ">="])
_ARITH_INLINE_OPS = frozenset(["+", "-", "*"])


def _is_literal(code: str) -> bool:
    return code in ("None", "True", "False") or code[:1].isdigit() or (
        code[:1] == "-" and code[1:2].isdigit()
    ) or code[:1] in ("'", '"')


def _static_type(expr: ast.Expression):
    from repro.plan.binder import infer_type

    try:
        return infer_type(expr)
    except Exception:
        return None


def _inlinable(expr: ast.BinaryOp) -> bool:
    """Operators whose Python form matches SQL semantics for the operands'
    static types (so codegen may skip the runtime helper)."""
    if expr.op not in _COMPARISON_OPS and expr.op not in _ARITH_INLINE_OPS:
        return False
    left = _static_type(expr.left)
    right = _static_type(expr.right)
    if left is None or right is None:
        return False
    from repro.datatypes.types import TypeKind

    plain_numeric = (
        (left.is_integer or left.is_float)
        and (right.is_integer or right.is_float)
    )
    if expr.op in _ARITH_INLINE_OPS:
        return plain_numeric
    if plain_numeric:
        return True
    if left.is_character and right.is_character:
        return True
    if left.kind == right.kind and left.kind in (
        TypeKind.DATE, TypeKind.TIMESTAMP, TypeKind.BOOLEAN,
    ):
        return True
    return False


class _ExprGen:
    """Generates Python source for bound expressions.

    Values that cannot be safely spelled inline (dates, decimals, function
    objects, cast targets) are hoisted into the environment dict and bound
    to fresh names at function entry.
    """

    def __init__(self) -> None:
        self.env: dict[str, object] = dict(_RUNTIME)
        self._temp = 0
        self._const = 0

    def fresh(self, prefix: str = "_t") -> str:
        self._temp += 1
        return f"{prefix}{self._temp}"

    def hoist(self, value: object, prefix: str = "_c") -> str:
        self._const += 1
        name = f"{prefix}{self._const}"
        self.env[name] = value
        return name

    def _ensure_simple(self, lines: list[str], code: str) -> str:
        """Bind *code* to a temp unless it is already a cheap atom, so
        inlined operators never evaluate an operand twice."""
        if code.isidentifier() or _IS_INDEXED.fullmatch(code) or _is_literal(code):
            return code
        name = self.fresh("_v")
        lines.append(f"{name} = {code}")
        return name

    def gen_predicate(self, expr: ast.Expression, row: str) -> tuple[list[str], str]:
        """Generate a plain-bool condition for filter position: SQL TRUE
        maps to Python True, FALSE and NULL both to False."""
        if isinstance(expr, ast.BinaryOp) and _inlinable(expr):
            l_lines, l_expr = self.gen(expr.left, row)
            r_lines, r_expr = self.gen(expr.right, row)
            lines = l_lines + r_lines
            a = self._ensure_simple(lines, l_expr)
            b = self._ensure_simple(lines, r_expr)
            op = {"=": "==", "<>": "!="}.get(expr.op, expr.op)
            checks = [
                f"{operand} is not None"
                for operand in (a, b)
                if not _is_literal(operand)
            ]
            guarded = " and ".join(checks + [f"{a} {op} {b}"])
            return lines, f"({guarded})"
        lines, code = self.gen(expr, row)
        return lines, f"(({code}) is True)"

    def gen(self, expr: ast.Expression, row: str) -> tuple[list[str], str]:
        """Return (setup lines, expression string) for *expr* over *row*."""
        if isinstance(expr, ast.Literal):
            value = literal_value(expr)
            if value is None or isinstance(value, (bool, int, str)):
                return [], repr(value)
            return [], self.hoist(value)
        if isinstance(expr, ast.BoundRef):
            return [], f"{row}[{expr.index}]"
        if isinstance(expr, ast.BinaryOp):
            helper = _BINARY_HELPERS.get(expr.op)
            if helper is None:
                raise ExecutionError(f"unsupported operator {expr.op!r}")
            l_lines, l_expr = self.gen(expr.left, row)
            r_lines, r_expr = self.gen(expr.right, row)
            # Type-aware inlining: when static types guarantee Python's
            # operator agrees with SQL semantics (no Decimal/float mixing,
            # no temporal arithmetic, no division), emit the operator
            # directly with an explicit NULL check instead of a helper call.
            if _inlinable(expr):
                lines = l_lines + r_lines
                a = self._ensure_simple(lines, l_expr)
                b = self._ensure_simple(lines, r_expr)
                op = {"=": "==", "<>": "!="}.get(expr.op, expr.op)
                checks = [
                    f"{operand} is None"
                    for operand in (a, b)
                    if not _is_literal(operand)
                ]
                if not checks:
                    return lines, f"({a} {op} {b})"
                return lines, (
                    f"(None if {' or '.join(checks)} else ({a} {op} {b}))"
                )
            return l_lines + r_lines, f"{helper}({l_expr}, {r_expr})"
        if isinstance(expr, ast.UnaryOp):
            lines, inner = self.gen(expr.operand, row)
            helper = "sql_not" if expr.op == "NOT" else "sql_neg"
            return lines, f"{helper}({inner})"
        if isinstance(expr, ast.FunctionCall):
            fn = scalar_function(expr.name)
            name = self.hoist(fn, "_fn")
            lines: list[str] = []
            args: list[str] = []
            for arg in expr.args:
                a_lines, a_expr = self.gen(arg, row)
                lines.extend(a_lines)
                args.append(a_expr)
            return lines, f"{name}({', '.join(args)})"
        if isinstance(expr, ast.CastExpr):
            from repro.datatypes.types import type_from_name

            target = self.hoist(
                type_from_name(expr.type_name, *expr.type_params), "_ty"
            )
            lines, inner = self.gen(expr.operand, row)
            return lines, f"cast_value({inner}, {target})"
        if isinstance(expr, ast.CaseExpr):
            # CASE needs statement-level control flow: emit an assignment.
            out = self.fresh("_case")
            lines: list[str] = [f"{out} = None"]
            depth = ""
            for cond, value in expr.whens:
                c_lines, c_expr = self.gen(cond, row)
                for cl in c_lines:
                    lines.append(depth + cl)
                lines.append(f"{depth}if ({c_expr}) is True:")
                v_lines, v_expr = self.gen(value, row)
                for vl in v_lines:
                    lines.append(depth + "    " + vl)
                lines.append(f"{depth}    {out} = {v_expr}")
                lines.append(f"{depth}else:")
                depth += "    "
            if expr.default is not None:
                d_lines, d_expr = self.gen(expr.default, row)
                for dl in d_lines:
                    lines.append(depth + dl)
                lines.append(f"{depth}{out} = {d_expr}")
            else:
                lines.append(f"{depth}pass")
            return lines, out
        if isinstance(expr, ast.InExpr):
            lines, operand = self.gen(expr.operand, row)
            item_exprs: list[str] = []
            for item in expr.items:
                i_lines, i_expr = self.gen(item, row)
                lines.extend(i_lines)
                item_exprs.append(i_expr)
            items = "(" + ", ".join(item_exprs) + ("," if len(item_exprs) == 1 else "") + ")"
            inner = f"sql_in({operand}, {items})"
            if expr.negated:
                inner = f"sql_not({inner})"
            return lines, inner
        if isinstance(expr, ast.BetweenExpr):
            lines, operand = self.gen(expr.operand, row)
            var = self.fresh("_btw")
            lines.append(f"{var} = {operand}")
            lo_lines, lo = self.gen(expr.low, row)
            hi_lines, hi = self.gen(expr.high, row)
            lines.extend(lo_lines)
            lines.extend(hi_lines)
            inner = f"sql_and(sql_ge({var}, {lo}), sql_le({var}, {hi}))"
            if expr.negated:
                inner = f"sql_not({inner})"
            return lines, inner
        if isinstance(expr, ast.IsNullExpr):
            lines, operand = self.gen(expr.operand, row)
            op = "is not None" if expr.negated else "is None"
            return lines, f"(({operand}) {op})"
        if isinstance(expr, ast.LikeExpr):
            lines, operand = self.gen(expr.operand, row)
            p_lines, pattern = self.gen(expr.pattern, row)
            lines.extend(p_lines)
            inner = f"sql_like({operand}, {pattern}, {expr.case_insensitive})"
            if expr.negated:
                inner = f"sql_not({inner})"
            return lines, inner
        raise ExecutionError(
            f"cannot generate code for {type(expr).__name__}"
        )


class _PipelineCompiler:
    """Fuses a pipeline of Scan/Filter/Project/HashJoin-probe operators,
    terminated by a collect or aggregate consumer, into one function.

    The generated function has the signature ``f(_src, _env)`` where
    ``_src`` is the iterable feeding the pipeline's source node and
    ``_env`` holds hoisted constants, helpers, prebuilt join hash tables
    and output accumulators.
    """

    def __init__(self) -> None:
        self.expr = _ExprGen()
        self.lines: list[str] = []
        self.indent = 1
        self._joins: list[PhysicalHashJoin] = []

    def add(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    # ---- pipeline assembly ---------------------------------------------------

    def compile_collect(self, node: PhysicalNode) -> Callable:
        """Pipeline whose consumer appends output tuples to ``_env['_out']``."""
        self.expr.env["_out_append"] = None  # placeholder, rebound per run

        def consume(row_var: str) -> None:
            self.add(f"_out.append({row_var})")

        return self._finish(node, consume, header_extra=["_out = _env['_out']"])

    def compile_aggregate(
        self, node: PhysicalNode, aggregate: PhysicalAggregate
    ) -> Callable:
        """Pipeline terminated by partial aggregation into ``_env['_states']``."""
        group_setups: list[tuple[list[str], str]] = []

        def consume(row_var: str) -> None:
            key_parts = []
            for expr in aggregate.group_exprs:
                lines, code = self.expr.gen(expr, row_var)
                for line in lines:
                    self.add(line)
                key_parts.append(code)
            key = "(" + ", ".join(key_parts) + ("," if len(key_parts) == 1 else "") + ")"
            self.add(f"_key = {key}")
            self.add("_st = _states.get(_key)")
            self.add("if _st is None:")
            self.add("    _st = [_agg_create[_i]() for _i in range(_nagg)]")
            self.add("    _states[_key] = _st")
            for i, call in enumerate(aggregate.aggregates):
                if call.argument is None:
                    value = "1"
                else:
                    lines, value = self.expr.gen(call.argument, row_var)
                    for line in lines:
                        self.add(line)
                self.add(f"_st[{i}] = _agg_acc[{i}](_st[{i}], {value})")

        header = [
            "_states = _env['_states']",
            "_agg_create = _env['_agg_create']",
            "_agg_acc = _env['_agg_acc']",
            f"_nagg = {len(aggregate.aggregates)}",
        ]
        return self._finish(node, consume, header_extra=header)

    def _finish(
        self,
        node: PhysicalNode,
        consume: Callable[[str], None],
        header_extra: list[str],
    ) -> Callable:
        self._emit(node, consume)
        body = self.lines
        header = ["def _pipeline(_src, _env):"]
        helper_names = sorted(set(_RUNTIME) | {
            name for name in self.expr.env if name.startswith(("_c", "_fn", "_ty"))
        })
        helper_names += [f"_ht{k}" for k in range(len(self._joins))]
        binds = [
            f"    {name} = _env[{name!r}]" for name in helper_names
        ]
        source = "\n".join(header + binds
                           + ["    " + h for h in header_extra] + body)
        code = compile(source, "<query-pipeline>", "exec")
        namespace: dict = {}
        exec(code, namespace)
        fn = namespace["_pipeline"]
        fn.generated_source = source  # for EXPLAIN-style debugging
        fn.env_template = self.expr.env
        return fn

    # ---- produce/consume recursion -----------------------------------------------

    def _emit(self, node: PhysicalNode, consume: Callable[[str], None]) -> None:
        if isinstance(node, PhysicalScan):
            row = self.expr.fresh("_row")
            self.add(f"for {row} in _src:")
            self.indent += 1
            for conjunct in node.filters:
                lines, code = self.expr.gen_predicate(conjunct, row)
                for line in lines:
                    self.add(line)
                self.add(f"if not {code}:")
                self.add("    continue")
            consume(row)
            self.indent -= 1
            return
        if isinstance(node, PhysicalFilter):
            def filtered_consume(row_var: str) -> None:
                for conjunct in _conjuncts(node.condition):
                    lines, code = self.expr.gen_predicate(conjunct, row_var)
                    for line in lines:
                        self.add(line)
                    self.add(f"if not {code}:")
                    self.add("    continue")
                consume(row_var)

            self._emit(node.child, filtered_consume)
            return
        if isinstance(node, PhysicalProject):
            def project_consume(row_var: str) -> None:
                parts: list[str] = []
                for expr in node.expressions:
                    lines, code = self.expr.gen(expr, row_var)
                    for line in lines:
                        self.add(line)
                    parts.append(code)
                out = self.expr.fresh("_prj")
                tup = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
                self.add(f"{out} = {tup}")
                consume(out)

            self._emit(node.child, project_consume)
            return
        if isinstance(node, PhysicalHashJoin):
            self._emit_join_probe(node, consume)
            return
        raise ExecutionError(
            f"node {type(node).__name__} cannot be fused into a pipeline"
        )

    def _emit_join_probe(
        self, node: PhysicalHashJoin, consume: Callable[[str], None]
    ) -> None:
        """Probe side stays in the pipeline; the hash table arrives prebuilt
        in the environment as ``_ht{k}`` (plus outer-join support vars)."""
        k = len(self._joins)
        self._joins.append(node)
        build_right = node.build_right
        probe_child = node.left if build_right else node.right
        probe_keys = (
            [l for l, _ in node.keys] if build_right else [r for _, r in node.keys]
        )
        null_width = len(
            node.right.output if build_right else node.left.output
        )
        preserve = (
            (node.kind is ast.JoinKind.LEFT and build_right)
            or (node.kind is ast.JoinKind.RIGHT and not build_right)
            or node.kind is ast.JoinKind.FULL
        )
        track = node.kind is ast.JoinKind.FULL

        def probe_consume(row_var: str) -> None:
            key_parts = [f"{row_var}[{i}]" for i in probe_keys]
            key = "(" + ", ".join(key_parts) + ("," if len(key_parts) == 1 else "") + ")"
            matches = self.expr.fresh("_m")
            if preserve:
                hit = self.expr.fresh("_hit")
                self.add(f"{hit} = False")
            self.add(f"{matches} = _ht{k}.get({key})")
            self.add(f"if {matches} is not None:")
            self.indent += 1
            build_row = self.expr.fresh("_b")
            self.add(f"for {build_row} in {matches}:")
            self.indent += 1
            combined = self.expr.fresh("_j")
            if build_right:
                self.add(f"{combined} = {row_var} + {build_row}")
            else:
                self.add(f"{combined} = {build_row} + {row_var}")
            if node.residual is not None:
                lines, code = self.expr.gen_predicate(node.residual, combined)
                for line in lines:
                    self.add(line)
                self.add(f"if not {code}:")
                self.add("    continue")
            if preserve:
                self.add(f"{hit} = True")
            if track:
                self.add(f"_matched{k}.add(id({build_row}))")
            consume(combined)
            self.indent -= 2
            if preserve:
                self.add(f"if not {hit}:")
                self.indent += 1
                padded = self.expr.fresh("_p")
                nulls = "(" + "None, " * null_width + ")"
                if build_right:
                    self.add(f"{padded} = {row_var} + {nulls}")
                else:
                    self.add(f"{padded} = {nulls} + {row_var}")
                consume(padded)
                self.indent -= 1

        self._emit(probe_child, probe_consume)

    @property
    def joins(self) -> list[PhysicalHashJoin]:
        return self._joins


def _conjuncts(condition: ast.Expression) -> list[ast.Expression]:
    if isinstance(condition, ast.BinaryOp) and condition.op == "AND":
        return _conjuncts(condition.left) + _conjuncts(condition.right)
    return [condition]


class CompiledExecutor(VolcanoExecutor):
    """Executes plans with generated-code pipelines.

    Inherits the Volcano driver for blocking operators (exchanges, hash
    builds, merges, sorts) and overrides pipeline execution. Time spent
    generating and ``compile()``-ing code accumulates in
    ``ctx.stats.compile_seconds`` — the fixed overhead the paper says
    amortises on large scans.
    """

    name = "compiled"

    # Pipelines are fused across these node types.
    _FUSABLE = (PhysicalScan, PhysicalFilter, PhysicalProject, PhysicalHashJoin)

    def _run_node(self, node: PhysicalNode) -> list:
        if isinstance(node, PhysicalAggregate) and isinstance(
            node.child, self._FUSABLE
        ) and self._pipeline_ok(node.child):
            return self._run_compiled_aggregate(node)
        if isinstance(node, self._FUSABLE) and self._pipeline_ok(node):
            return self._run_compiled_pipeline(node)
        return super()._run_node(node)

    # ---- eligibility ------------------------------------------------------

    def _pipeline_ok(self, node: PhysicalNode) -> bool:
        """A pipeline is compilable when its spine reaches a scan through
        fusable operators and no fused join needs to *move* its probe side
        (probe-moving strategies re-partition mid-pipeline, which the fused
        loop cannot express — those plans run on the inherited driver)."""
        if isinstance(node, PhysicalScan):
            return True
        if isinstance(node, (PhysicalFilter, PhysicalProject)):
            return self._pipeline_ok(node.child)
        if isinstance(node, PhysicalHashJoin):
            if node.kind is ast.JoinKind.FULL:
                return False
            if node.strategy in (
                JoinDistribution.DS_DIST_BOTH,
                JoinDistribution.DS_DIST_OUTER,
            ):
                return False
            probe = node.left if node.build_right else node.right
            return self._pipeline_ok(probe)
        return False

    # ---- compiled pipelines ------------------------------------------------

    def _prepare_pipeline(
        self, node: PhysicalNode, mode: str, aggregate: PhysicalAggregate | None
    ) -> tuple[Callable, list[PhysicalHashJoin], dict]:
        from repro.exec.segmentcache import fragment_signature, pipeline_joins

        cache = self._ctx.segment_cache
        start = time.perf_counter()
        signature = None
        if cache is not None:
            signature = fragment_signature(node, mode, aggregate)
            entry = cache.lookup(signature)
            if entry is not None:
                # Reuse the compiled function; the join *nodes* must come
                # from the current plan (build sides run per query).
                joins = pipeline_joins(node)
                self._ctx.stats.segment_cache_hits += 1
                self._ctx.stats.compile_seconds += time.perf_counter() - start
                return entry.fn, joins, dict(entry.env_template)
            self._ctx.stats.segment_cache_misses += 1
        compiler = _PipelineCompiler()
        if mode == "aggregate":
            fn = compiler.compile_aggregate(node, aggregate)
        else:
            fn = compiler.compile_collect(node)
        if cache is not None:
            cache.store(signature, mode, fn, fn.env_template)
        self._ctx.stats.compile_seconds += time.perf_counter() - start
        return fn, compiler.joins, dict(fn.env_template)

    def _pipeline_source(self, node: PhysicalNode) -> PhysicalScan:
        if isinstance(node, PhysicalScan):
            return node
        if isinstance(node, (PhysicalFilter, PhysicalProject)):
            return self._pipeline_source(node.child)
        if isinstance(node, PhysicalHashJoin):
            probe = node.left if node.build_right else node.right
            return self._pipeline_source(probe)
        raise ExecutionError(f"no pipeline source under {type(node).__name__}")

    def _build_join_tables(self, joins: list[PhysicalHashJoin]) -> list[list[dict]]:
        """Materialize, move and hash every fused join's build side.

        Build sides execute through the normal driver (possibly compiled
        themselves if they contain fusable pipelines), then move per the
        join strategy: broadcast for DS_BCAST_INNER, hash-redistribution
        for DS_DIST_INNER, nothing for DS_DIST_NONE.
        """
        per_join_tables: list[list[dict]] = []
        for join in joins:
            build_node = join.right if join.build_right else join.left
            build_data = self._materialize(build_node, self._run(build_node))
            width = exchange.row_width(build_node.output)
            keys = (
                [r for _, r in join.keys]
                if join.build_right
                else [l for l, _ in join.keys]
            )
            if join.strategy is JoinDistribution.DS_BCAST_INNER:
                build_data = exchange.broadcast(
                    self._one_copy(build_node, build_data), self._ctx, width
                )
            elif join.strategy is JoinDistribution.DS_DIST_INNER:
                key0 = keys[0]
                build_data = exchange.shuffle(
                    self._one_copy(build_node, build_data),
                    lambda row: row[key0],
                    self._ctx,
                    width,
                )
            tables: list[dict] = []
            for s, rows in enumerate(build_data):
                # Governed build, as in the interpreted path. Fused joins
                # are never FULL (_pipeline_ok rejects those), so
                # grace-hash repartitioning is always order-safe here.
                state = self._spill_state()
                if state is not None:
                    budget, manager = state
                    disk = self._ctx.slices[s].disk
                    spill_table = SpillableHashTable(
                        budget,
                        manager.file_factory(disk),
                        self._spill_label(join, s),
                    )
                    for row in rows:
                        key = tuple(row[i] for i in keys)
                        if any(v is None for v in key):
                            continue
                        spill_table.insert(key, row)
                    table = spill_table.build()
                    self._note_spill(join, spill_table, disk.disk_id)
                    spill_table.done()
                else:
                    table = {}
                    for row in rows:
                        key = tuple(row[i] for i in keys)
                        if any(v is None for v in key):
                            continue
                        table.setdefault(key, []).append(row)
                tables.append(table)
            per_join_tables.append(tables)
        return per_join_tables

    def _probe_source_rows(
        self, joins: list[PhysicalHashJoin], scan: PhysicalScan
    ) -> list:
        """Scan-side input per slice.

        An ALL-distributed scan feeding a join must collapse to one copy
        when the join expects each probe row exactly once: under
        DS_BCAST_INNER (planner's outer-join fix), or DS_DIST_NONE against
        a build side that is itself replicated. ``joins[-1]`` is the join
        adjacent to the scan (codegen appends outer joins first).
        """
        # Raw per-slice iterables come from the shared _scan_slices
        # (zone-map pruning, scan accounting, system-table branch); the
        # per-row filters are fused into the generated code instead.
        per_slice = self._scan_slices(scan)
        if scan.partitioning.kind == "all" and joins:
            innermost = joins[-1]
            build_node = (
                innermost.right if innermost.build_right else innermost.left
            )
            collapse = (
                innermost.strategy is JoinDistribution.DS_BCAST_INNER
                or (
                    innermost.strategy is JoinDistribution.DS_DIST_NONE
                    and build_node.partitioning.kind == "all"
                )
            )
            if collapse:
                materialized = [list(rows) for rows in per_slice]
                return self._one_copy(scan, materialized)
        return per_slice

    def _run_compiled_pipeline(self, node: PhysicalNode) -> list:
        fn, joins, env = self._prepare_pipeline(node, "collect", None)
        tables = self._build_join_tables(joins)
        scan = self._pipeline_source(node)
        source_rows = self._probe_source_rows(joins, scan)
        out: list = []
        for s in range(self._ctx.slice_count):
            slice_env = dict(env)
            slice_out: list = []
            slice_env["_out"] = slice_out
            for k in range(len(joins)):
                slice_env[f"_ht{k}"] = tables[k][s]
            fn(source_rows[s], slice_env)
            out.append(slice_out)
        return out

    def _run_compiled_aggregate(self, node: PhysicalAggregate) -> list:
        fn, joins, env = self._prepare_pipeline(node.child, "aggregate", node)
        tables = self._build_join_tables(joins)
        scan = self._pipeline_source(node.child)
        source_rows = self._probe_source_rows(joins, scan)
        aggregates = [call.aggregate for call in node.aggregates]
        env["_agg_create"] = [agg.create for agg in aggregates]
        env["_agg_acc"] = [agg.accumulate for agg in aggregates]

        # When the aggregate input is replicated (child 'all'), one slice's
        # copy carries every row; running the others would multiply counts.
        child_all = node.child.partitioning.kind == "all"
        partials: list[dict] = []
        for s in range(self._ctx.slice_count):
            if child_all and s > 0:
                partials.append({})
                continue
            slice_env = dict(env)
            # A SpillableAggregateStates when governed: the generated
            # code only uses _states.get / _states[_key] = _st, so a
            # flushed key simply opens a fresh generation.
            states = self._agg_states(node, s, aggregates)
            slice_env["_states"] = states
            for k in range(len(joins)):
                slice_env[f"_ht{k}"] = tables[k][s]
            fn(source_rows[s], slice_env)
            partials.append(self._finish_agg_states(node, s, states))

        width = exchange.row_width(node.output) if node.output else 8
        if node.local_only:
            return [
                [
                    key
                    + tuple(
                        agg.finalize(state)
                        for agg, state in zip(aggregates, entry)
                    )
                    for key, entry in states.items()
                ]
                for states in partials
            ]
        merged = self._agg_states(node, 0, aggregates, tag="-merge")
        transferred = 0
        for states in partials:
            transferred += len(states)
            for key, entry in states.items():
                target = merged.get(key)
                if target is None:
                    merged[key] = entry
                else:
                    for i, agg in enumerate(aggregates):
                        target[i] = agg.merge(target[i], entry[i])
        self._ctx.interconnect.record_gather(transferred * width)
        merged = self._finish_agg_states(node, 0, merged)
        if not node.group_exprs and not merged:
            merged[()] = [agg.create() for agg in aggregates]
        leader_rows = [
            key + tuple(agg.finalize(st) for agg, st in zip(aggregates, entry))
            for key, entry in merged.items()
        ]
        return [leader_rows] + [[] for _ in range(self._ctx.slice_count - 1)]
