"""Execution context and per-query statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.network import Interconnect, NetworkStats
from repro.engine.transactions import Snapshot
from repro.storage.chain import ScanStats
from repro.storage.slicestore import SliceStorage


@dataclass
class QueryStats:
    """Everything a query run reports besides its rows.

    These counters are the measured quantities behind the benchmark
    experiments: blocks skipped (a1), network bytes by category (a3),
    compile vs execute time (a2).
    """

    scan: ScanStats = field(default_factory=ScanStats)
    network: NetworkStats = field(default_factory=NetworkStats)
    rows_returned: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    executor: str = "volcano"
    plan_text: str = ""


@dataclass
class ExecutionContext:
    """Everything an executor needs: slices, visibility, accounting."""

    slices: list[SliceStorage]
    snapshot: Snapshot
    interconnect: Interconnect
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def slice_count(self) -> int:
        return len(self.slices)
