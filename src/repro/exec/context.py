"""Execution context and per-query statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.network import Interconnect, NetworkStats
from repro.engine.transactions import Snapshot
from repro.storage.chain import ScanStats
from repro.storage.slicestore import SliceStorage


@dataclass
class OperatorStat:
    """Per-plan-step execution counters (one svl_query_summary row).

    ``step`` is the node's preorder index in the physical plan — the same
    order ``explain()`` renders lines in. ``rows`` counts rows the
    operator emitted (for scans: rows produced after zone-map pruning and
    visibility, before the pushed-down filters). ``elapsed_us`` is span
    time from the operator's start to the last row it produced; with lazy
    pipelines this is inclusive of child time.
    """

    step: int
    operator: str
    rows: int = 0
    elapsed_us: int = 0
    #: Planner row estimate for this operator (EXPLAIN ANALYZE shows
    #: ``rows=<actual> est=<estimated>``; svl_query_summary derives the
    #: misestimation factor from the pair).
    est_rows: float = 0.0
    #: Scan-only IO counters (zero for non-scan operators).
    blocks_read: int = 0
    blocks_skipped: int = 0
    bytes_read: int = 0
    #: Block-decode cache traffic (nonzero only for vectorized scans).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Operate-on-compressed scan counters (nonzero only for encoded
    #: vectorized scans): batches that carried still-encoded columns and
    #: the uncompressed bytes whose decode was avoided.
    encoded_batches: int = 0
    decode_bytes_avoided: int = 0
    #: Parallel-executor pushdown (zero for serial executors): the worker
    #: count the pipeline ran with and the morsels it was split into.
    workers: int = 0
    morsels: int = 0
    #: Spill accounting (zero while the operator fits its memory budget):
    #: temp bytes written and partitions/runs spilled by this operator.
    spilled_bytes: int = 0
    spill_partitions: int = 0


@dataclass
class QueryStats:
    """Everything a query run reports besides its rows.

    These counters are the measured quantities behind the benchmark
    experiments: blocks skipped (a1), network bytes by category (a3),
    compile vs execute time (a2).
    """

    scan: ScanStats = field(default_factory=ScanStats)
    network: NetworkStats = field(default_factory=NetworkStats)
    rows_returned: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    executor: str = "volcano"
    plan_text: str = ""
    #: Segments re-run by the leader after a recoverable fault.
    segment_retries: int = 0
    #: True when the rows were served from the leader's result cache
    #: without execution (svl_query_summary.result_cache_hit).
    result_cache_hit: bool = False
    #: "hit" | "miss" for cache-eligible SELECTs, "" when the cache was
    #: bypassed (explicit transaction, system tables, SET off). Drives
    #: the EXPLAIN ANALYZE annotation.
    result_cache_status: str = ""
    #: Compiled-pipeline fragments reused from / inserted into the
    #: cluster's segment cache by this query (compiled executor only).
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0
    #: Per-plan-step counters (feeds svl_query_summary / EXPLAIN ANALYZE).
    #: The compiled executor only reports the steps it actually drives
    #: (fused pipeline interiors run inside generated code).
    operators: list[OperatorStat] = field(default_factory=list)
    #: Parallel executor only: one SliceExec per slice that ran morsels
    #: (feeds stv_slice_exec).
    slice_exec: list["SliceExec"] = field(default_factory=list)
    #: Spill totals across operators (svl_query_summary columns) and the
    #: per-operator/per-disk breakdown (feeds stv_query_spill).
    spilled_bytes: int = 0
    spill_partitions: int = 0
    spill_events: list["SpillEvent"] = field(default_factory=list)
    #: High-water mark of governed operator memory (hash builds, agg
    #: state, sort buffers) — the working-set measurement bench a13
    #: scales its budgets from. 0 when the query ran ungoverned.
    peak_memory_bytes: int = 0


@dataclass
class SpillEvent:
    """One operator's spill activity on one disk (stv_query_spill row)."""

    step: int
    operator: str
    disk_id: str
    partitions: int
    bytes_written: int
    bytes_read: int


@dataclass
class SliceExec:
    """Per-slice worker accounting for one parallel query (stv_slice_exec)."""

    slice_id: str
    node_id: str
    mode: str
    morsels: int = 0
    rows: int = 0
    scanned_rows: int = 0
    elapsed_us: int = 0
    crashes: int = 0


@dataclass
class ParallelConfig:
    """How the parallel executor runs its per-slice workers.

    ``mode`` is "fork" (process pool, workers inherit slice stores),
    "thread" (fallback where fork is unavailable), or "serial"
    (parallelism 1: morsels run inline on the leader — same machinery,
    no pool). ``pool_manager`` is the cluster's
    :class:`repro.exec.workers.PoolManager`; ``registry_id`` keys the
    cluster's slice list in the worker-side registry.
    """

    degree: int = 2
    mode: str = "fork"
    pool_manager: object = None
    registry_id: int = 0
    #: Blocks per morsel: the scheduling quantum workers pull.
    morsel_blocks: int = 4
    #: Row pipelines whose morsel output exceeds this fall back to
    #: leader execution instead of shipping the rows across the pool.
    row_ship_limit: int = 100_000


@dataclass
class ExecutionContext:
    """Everything an executor needs: slices, visibility, accounting."""

    slices: list[SliceStorage]
    snapshot: Snapshot
    interconnect: Interconnect
    stats: QueryStats = field(default_factory=QueryStats)
    #: Shared fault injector; None means no faults are being injected.
    fault_injector: object = None
    #: System-table rows materialized by the session before execution,
    #: keyed by table name. Scans of these tables read from here (rows
    #: live at the leader / slice 0) instead of slice storage.
    system_rows: dict = field(default_factory=dict)
    #: Cluster-wide decoded-block cache consumed by the vectorized
    #: executor's batch scans; None disables caching.
    block_cache: object = None
    #: Operate-on-compressed scans (SET enable_encoded_scan): vectorized
    #: batch scans hand whitelisted codecs to the kernels undecoded.
    encoded_scan: bool = True
    #: Cluster-wide compiled-segment cache consulted by the compiled
    #: executor's pipeline codegen; None disables reuse.
    segment_cache: object = None
    #: Parallel-executor configuration; None for serial executors.
    parallel: "ParallelConfig | None" = None
    #: Per-query memory governor (:class:`repro.exec.spill.MemoryBudget`);
    #: None runs unbounded with no spilling — the pre-governor behaviour.
    memory_budget: object = None
    #: The attempt's :class:`repro.storage.spillfile.SpillManager`. The
    #: session releases it in a ``finally`` so temp bytes never leak,
    #: whatever way the attempt ends.
    spill: object = None

    @property
    def slice_count(self) -> int:
        return len(self.slices)

    @property
    def parallelism(self) -> int:
        return self.parallel.degree if self.parallel is not None else 1

    def check_faults(self) -> None:
        """Fault checkpoint: fire any node crash scheduled for a node that
        owns one of this query's slices. Executors call this at segment
        boundaries — the points where a real leader detects a dead node."""
        if self.fault_injector is None:
            return
        for store in self.slices:
            # Slice ids look like "node-1-s0"; the prefix is the node id.
            node_id = store.slice_id.rsplit("-s", 1)[0]
            self.fault_injector.check_node(node_id)
