"""Execution context and per-query statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.network import Interconnect, NetworkStats
from repro.engine.transactions import Snapshot
from repro.storage.chain import ScanStats
from repro.storage.slicestore import SliceStorage


@dataclass
class QueryStats:
    """Everything a query run reports besides its rows.

    These counters are the measured quantities behind the benchmark
    experiments: blocks skipped (a1), network bytes by category (a3),
    compile vs execute time (a2).
    """

    scan: ScanStats = field(default_factory=ScanStats)
    network: NetworkStats = field(default_factory=NetworkStats)
    rows_returned: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    executor: str = "volcano"
    plan_text: str = ""
    #: Segments re-run by the leader after a recoverable fault.
    segment_retries: int = 0


@dataclass
class ExecutionContext:
    """Everything an executor needs: slices, visibility, accounting."""

    slices: list[SliceStorage]
    snapshot: Snapshot
    interconnect: Interconnect
    stats: QueryStats = field(default_factory=QueryStats)
    #: Shared fault injector; None means no faults are being injected.
    fault_injector: object = None

    @property
    def slice_count(self) -> int:
        return len(self.slices)

    def check_faults(self) -> None:
        """Fault checkpoint: fire any node crash scheduled for a node that
        owns one of this query's slices. Executors call this at segment
        boundaries — the points where a real leader detects a dead node."""
        if self.fault_injector is None:
            return
        for store in self.slices:
            # Slice ids look like "node-1-s0"; the prefix is the node id.
            node_id = store.slice_id.rsplit("-s", 1)[0]
            self.fault_injector.check_node(node_id)
