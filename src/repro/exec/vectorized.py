"""The vectorized (column-batch) executor.

Operators exchange :class:`~repro.exec.batch.ColumnBatch`es — one Python
list per live column, one block's worth of rows per batch — instead of
row tuples. Scans decode each block once (served from the cluster's
:class:`~repro.storage.blockcache.BlockDecodeCache` across queries),
filters and projections run prebuilt vector kernels over whole columns,
hash joins probe per batch against a prebuilt key column, and aggregates
fold whole argument vectors into partial states.

The executor subclasses :class:`VolcanoExecutor` so distribution logic,
instrumentation and non-batch operators (sorts, limits, set ops, nested
loops, FULL joins) are shared: per-slice payloads are either a
:class:`BatchList` of column batches or a plain row list, and the
materialization choke points (:meth:`_materialize`, :meth:`_leader_rows`,
:meth:`_collect_at_leader`) transparently convert batches to rows where
an inherited operator needs them. Step/row/block accounting is kept
identical to the other executors (scan rows are counted pre-filter,
blocks once per logical block) so ``svl_query_summary`` and EXPLAIN
ANALYZE agree across all three engines.
"""

from __future__ import annotations

import time

from repro.exec import exchange
from repro.exec.batch import ColumnBatch, make_mask_kernel, make_value_kernel
from repro.exec.encoded import EncodedColumn
from repro.exec.scan import scan_shard_batches
from repro.exec.spill import SpillableHashTable
from repro.exec.volcano import PerSlice, VolcanoExecutor, _compile, scan_column_names
from repro.plan.physical import (
    JoinDistribution,
    PhysicalAggregate,
    PhysicalFilter,
    PhysicalHashJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalScan,
)
from repro.sql import ast
from repro.storage.chain import ScanStats


class BatchList(list):
    """Marker type: a per-slice payload of ColumnBatches (vs row tuples)."""


def _batch_rows(batches: "BatchList") -> list:
    """Materialize a slice's batches into one row-tuple list."""
    out: list = []
    for batch in batches:
        out.extend(batch.rows())
    return out


class VectorizedExecutor(VolcanoExecutor):
    """Executes physical plans over column-vector batches."""

    name = "vectorized"

    # ---- batch/row conversion choke points --------------------------------

    def _materialize(self, node: PhysicalNode, per_slice: PerSlice) -> PerSlice:
        return [
            _batch_rows(rows) if isinstance(rows, BatchList) else list(rows)
            for rows in per_slice
        ]

    def _one_copy(self, node: PhysicalNode, per_slice: PerSlice) -> PerSlice:
        if node.partitioning.kind == "all" and isinstance(
            per_slice[0], BatchList
        ):
            return [per_slice[0]] + [
                BatchList() for _ in range(self._ctx.slice_count - 1)
            ]
        return super()._one_copy(node, per_slice)

    def _leader_rows(self, node: PhysicalNode, per_slice: PerSlice) -> list:
        return super()._leader_rows(node, self._materialize(node, per_slice))

    def _collect_at_leader(
        self, plan: PhysicalNode, per_slice: PerSlice
    ) -> list[tuple]:
        return super()._collect_at_leader(
            plan, self._materialize(plan, per_slice)
        )

    def _count_slices(self, per_slice: PerSlice, stat) -> PerSlice:
        start = self._start_times[stat.step]
        out: PerSlice = []
        for rows in per_slice:
            if isinstance(rows, BatchList):
                stat.rows += sum(batch.count for batch in rows)
                out.append(rows)
            elif isinstance(rows, list):
                stat.rows += len(rows)
                out.append(rows)
            else:
                out.append(self._counted_iter(rows, stat, start))
        self._touch(stat, start)
        return out

    # ---- scan --------------------------------------------------------------

    def _run_scan(self, node: PhysicalScan) -> PerSlice:
        if self._ctx.system_rows.get(node.table.name) is not None:
            # System-table rows live at the leader; the row path handles them.
            return super()._run_scan(node)
        stat = self._begin_stat(node)
        if stat is None:
            local = self._ctx.stats.scan
            start = time.perf_counter()
        else:
            local = self._scan_locals.get(stat.step)
            if local is None:
                local = ScanStats()
                self._scan_locals[stat.step] = local
            start = self._start_times[stat.step]
        column_names = scan_column_names(node)
        masks = [make_mask_kernel(f) for f in node.filters]
        cache = self._ctx.block_cache
        out: PerSlice = []
        for store in self._ctx.slices:
            slice_batches = BatchList()
            if store.has_shard(node.table.name):
                shard = store.shard(node.table.name)
                for batch in scan_shard_batches(
                    shard,
                    column_names,
                    node.zone_predicates,
                    self._ctx.snapshot,
                    local,
                    store.disk,
                    cache,
                    encoded=self._ctx.encoded_scan,
                ):
                    if stat is not None:
                        # Scan output is counted pre-filter, matching the
                        # row executors' accounting.
                        stat.rows += batch.count
                    batch = _apply_masks(batch, masks)
                    if batch is not None:
                        slice_batches.append(batch)
            out.append(slice_batches)
        if stat is not None:
            self._touch(stat, start)
        return out

    # ---- filter / project --------------------------------------------------

    def _run_filter(self, node: PhysicalFilter) -> PerSlice:
        child = self._run(node.child)
        mask = make_mask_kernel(node.condition)
        predicate = None
        out: PerSlice = []
        for rows in child:
            if isinstance(rows, BatchList):
                filtered = BatchList()
                for batch in rows:
                    batch = _apply_masks(batch, (mask,))
                    if batch is not None:
                        filtered.append(batch)
                out.append(filtered)
            else:
                if predicate is None:
                    predicate = _compile(node.condition)
                out.append(self._filtered(rows, predicate))
        return out

    def _run_project(self, node: PhysicalProject) -> PerSlice:
        child = self._run(node.child)
        kernels = [make_value_kernel(e) for e in node.expressions]
        exprs = None
        out: PerSlice = []
        for rows in child:
            if isinstance(rows, BatchList):
                projected = BatchList()
                for batch in rows:
                    projected.append(
                        ColumnBatch(
                            [kernel(batch) for kernel in kernels], batch.count
                        )
                    )
                out.append(projected)
            else:
                if exprs is None:
                    exprs = [_compile(e) for e in node.expressions]
                fns = exprs
                out.append(
                    tuple(fn(row) for fn in fns) for row in rows
                )
        return out

    # ---- aggregate -----------------------------------------------------------

    def _run_aggregate(self, node: PhysicalAggregate) -> PerSlice:
        child = self._one_copy(node.child, self._run_materialized_or_batches(node.child))
        group_kernels = [make_value_kernel(e) for e in node.group_exprs]
        arg_kernels = [
            make_value_kernel(call.argument)
            if call.argument is not None
            else None
            for call in node.aggregates
        ]
        aggregates = [call.aggregate for call in node.aggregates]
        group_fns = arg_fns = None

        partials: list[dict] = []
        for s, rows in enumerate(child):
            states = self._agg_states(node, s, aggregates)
            if isinstance(rows, BatchList):
                self._accumulate_batches(
                    states, rows, group_kernels, arg_kernels, aggregates
                )
            else:
                if group_fns is None:
                    group_fns = [_compile(e) for e in node.group_exprs]
                    arg_fns = [
                        _compile(call.argument)
                        if call.argument is not None
                        else None
                        for call in node.aggregates
                    ]
                self._accumulate_rows(
                    states, rows, group_fns, arg_fns, aggregates
                )
            partials.append(self._finish_agg_states(node, s, states))
        return self._merge_partials(node, partials, aggregates)

    def _run_materialized_or_batches(self, node: PhysicalNode) -> PerSlice:
        """Run *node*, materializing lazy row iterables but keeping batch
        payloads as batches (so aggregation consumes columns directly)."""
        per_slice = self._run(node)
        return [
            rows if isinstance(rows, (BatchList, list)) else list(rows)
            for rows in per_slice
        ]

    @staticmethod
    def _accumulate_batches(
        states: dict, batches: "BatchList", group_kernels, arg_kernels, aggregates
    ) -> None:
        n_aggs = len(aggregates)
        for batch in batches:
            count = batch.count
            if count == 0:
                continue
            arg_vectors = [
                None if kernel is None else kernel(batch)
                for kernel in arg_kernels
            ]
            if not group_kernels:
                # Global aggregation: fold whole vectors into one state.
                entry = states.get(())
                if entry is None:
                    entry = [agg.create() for agg in aggregates]
                    states[()] = entry
                for i in range(n_aggs):
                    agg = aggregates[i]
                    vector = arg_vectors[i]
                    if vector is None:
                        # COUNT(*): every row counts once.
                        entry[i] = agg.merge(entry[i], count)
                    elif (
                        type(vector) is EncodedColumn
                        and vector.is_rle
                        and vector.foldable_runs()
                    ):
                        # Operate-on-compressed: fold whole RLE runs
                        # without expanding them (NULL runs are omitted,
                        # matching SQL aggregate NULL skipping).
                        state = entry[i]
                        for value, run in vector.runs():
                            state = agg.accumulate_run(state, value, run)
                        entry[i] = state
                    else:
                        entry[i] = agg.accumulate_many(entry[i], vector)
                continue
            key_columns = [kernel(batch) for kernel in group_kernels]
            if len(key_columns) == 1:
                single = key_columns[0]
                keys = [(value,) for value in single]
            else:
                keys = list(zip(*key_columns))
            for j in range(count):
                key = keys[j]
                entry = states.get(key)
                if entry is None:
                    entry = [agg.create() for agg in aggregates]
                    states[key] = entry
                for i in range(n_aggs):
                    agg = aggregates[i]
                    vector = arg_vectors[i]
                    entry[i] = agg.accumulate(
                        entry[i], 1 if vector is None else vector[j]
                    )

    # ---- hash join ----------------------------------------------------------

    def _run_hash_join(self, node: PhysicalHashJoin) -> PerSlice:
        strategy = node.strategy
        # The batch probe keeps the probe side in place; fall back to the
        # row path whenever the strategy moves it (or for FULL joins,
        # which must track unmatched build rows).
        probe_moves = strategy in (
            JoinDistribution.DS_DIST_BOTH,
            JoinDistribution.DS_DIST_OUTER,
        )
        if (
            not node.batch_capable
            or node.kind is ast.JoinKind.FULL
            or probe_moves
        ):
            return super()._run_hash_join(node)

        build_node = node.right if node.build_right else node.left
        probe_node = node.left if node.build_right else node.right
        build = self._materialize(build_node, self._run(build_node))
        probe = self._run_materialized_or_batches(probe_node)
        build_width = exchange.row_width(build_node.output)
        left_keys = [l for l, _ in node.keys]
        right_keys = [r for _, r in node.keys]
        build_keys = right_keys if node.build_right else left_keys
        probe_keys = left_keys if node.build_right else right_keys

        if strategy is JoinDistribution.DS_DIST_NONE:
            if (
                node.left.partitioning.kind == "all"
                and node.right.partitioning.kind == "all"
            ):
                # Keep one copy of the left side; only slice 0 produces.
                if node.build_right:
                    probe = self._one_copy(node.left, probe)
                else:
                    build = super()._one_copy(node.left, build)
        elif strategy is JoinDistribution.DS_BCAST_INNER:
            build = exchange.broadcast(
                super()._one_copy(build_node, build), self._ctx, build_width
            )
            probe = self._one_copy(probe_node, probe)
        else:  # DS_DIST_INNER: redistribute the build side by its key.
            bk = build_keys[0]
            build = exchange.shuffle(
                super()._one_copy(build_node, build),
                lambda row: row[bk],
                self._ctx,
                build_width,
            )

        residual = (
            _compile(node.residual) if node.residual is not None else None
        )
        build_null = (None,) * len(build_node.output)
        preserve_probe = (
            node.kind is ast.JoinKind.LEFT and node.build_right
        ) or (node.kind is ast.JoinKind.RIGHT and not node.build_right)

        out: PerSlice = []
        for s in range(self._ctx.slice_count):
            # Same governed build as the row path (never FULL here, so
            # grace-hash partitioning is always order-safe).
            state = self._spill_state()
            spill_table = None
            if state is not None:
                budget, manager = state
                disk = self._ctx.slices[s].disk
                spill_table = SpillableHashTable(
                    budget,
                    manager.file_factory(disk),
                    self._spill_label(node, s),
                )
                for row in build[s]:
                    key = tuple(row[i] for i in build_keys)
                    if any(v is None for v in key):
                        continue  # NULL never equals anything
                    spill_table.insert(key, row)
                table = spill_table.build()
                self._note_spill(node, spill_table, disk.disk_id)
            else:
                table = {}
                for row in build[s]:
                    key = tuple(row[i] for i in build_keys)
                    if any(v is None for v in key):
                        continue  # NULL never equals anything
                    table.setdefault(key, []).append(row)
            probe_sl = probe[s]
            if isinstance(probe_sl, BatchList):
                out.append(
                    self._probe_batches(
                        node,
                        probe_sl,
                        table,
                        probe_keys,
                        residual,
                        build_null,
                        preserve_probe,
                    )
                )
            else:
                out.append(
                    self._probe_rows(
                        node,
                        probe_sl,
                        table,
                        probe_keys,
                        residual,
                        build_null,
                        preserve_probe,
                    )
                )
            if spill_table is not None:
                spill_table.done()
        return out

    def _probe_batches(
        self,
        node: PhysicalHashJoin,
        batches: "BatchList",
        table: dict,
        probe_keys: list[int],
        residual,
        build_null: tuple,
        preserve_probe: bool,
    ) -> list:
        build_right = node.build_right
        results: list = []
        single_key = len(probe_keys) == 1
        for batch in batches:
            probe_rows = batch.rows()
            if single_key:
                key_column = batch.column(probe_keys[0])
                for j in range(batch.count):
                    value = key_column[j]
                    matches = (
                        table.get((value,)) if value is not None else None
                    )
                    self._emit_matches(
                        results,
                        probe_rows[j],
                        matches,
                        residual,
                        build_null,
                        preserve_probe,
                        build_right,
                    )
            else:
                key_columns = [batch.column(i) for i in probe_keys]
                for j in range(batch.count):
                    key = tuple(col[j] for col in key_columns)
                    matches = (
                        None
                        if any(v is None for v in key)
                        else table.get(key)
                    )
                    self._emit_matches(
                        results,
                        probe_rows[j],
                        matches,
                        residual,
                        build_null,
                        preserve_probe,
                        build_right,
                    )
        return results

    def _probe_rows(
        self,
        node: PhysicalHashJoin,
        probe_rows: list,
        table: dict,
        probe_keys: list[int],
        residual,
        build_null: tuple,
        preserve_probe: bool,
    ) -> list:
        build_right = node.build_right
        results: list = []
        for probe in probe_rows:
            key = tuple(probe[i] for i in probe_keys)
            matches = None if any(v is None for v in key) else table.get(key)
            self._emit_matches(
                results,
                probe,
                matches,
                residual,
                build_null,
                preserve_probe,
                build_right,
            )
        return results

    @staticmethod
    def _emit_matches(
        results: list,
        probe: tuple,
        matches,
        residual,
        build_null: tuple,
        preserve_probe: bool,
        build_right: bool,
    ) -> None:
        emitted = False
        if matches:
            for build in matches:
                combined = probe + build if build_right else build + probe
                if residual is not None and residual(combined) is not True:
                    continue
                results.append(combined)
                emitted = True
        if not emitted and preserve_probe:
            if build_right:
                results.append(probe + build_null)
            else:
                results.append(build_null + probe)


def _apply_masks(batch: ColumnBatch, masks) -> ColumnBatch | None:
    """Filter *batch* through mask kernels; None when nothing survives."""
    for kernel in masks:
        mask = kernel(batch)
        if all(mask):
            continue
        selection = [i for i, keep in enumerate(mask) if keep]
        if not selection:
            return None
        batch = batch.take(selection)
    return batch if batch.count else None
