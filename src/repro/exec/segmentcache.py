"""The compiled-segment cache: reusing generated pipelines across queries.

"The use of query compilation adds a fixed overhead per query ...
compiled code is cached" (paper §2.1). The compiled executor
(:mod:`repro.exec.codegen`) fuses each pipeline into one generated
Python function; that function's *source* is fully determined by the
pipeline's plan-fragment shape — the fused operators, their bound
expressions (``BoundRef.to_sql()`` is index-qualified, so structural
equality via SQL text is exact), the join probe metadata, and the
consumer mode. Two queries whose pipelines share that shape can share
the compiled function: everything run-specific (output accumulators,
prebuilt join hash tables, aggregate state factories) enters through the
per-run environment dict, and the join *nodes* are re-derived from the
current plan by :func:`pipeline_joins` so build sides execute against
current storage.

The table a fragment scans is deliberately NOT part of the signature —
the generated code never names it (rows arrive through ``_src``), so one
compiled fragment serves every table with the same column layout.

Entries feed the ``svl_compile_cache`` system table; the vectorized
executor's exec-compiled batch kernels (:mod:`repro.exec.batch`) are the
second population of that table.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExecutionError
from repro.plan.physical import (
    PhysicalAggregate,
    PhysicalFilter,
    PhysicalHashJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalScan,
)

#: Default number of compiled fragments kept resident.
DEFAULT_CAPACITY = 256


def fragment_signature(
    node: PhysicalNode, mode: str, aggregate: PhysicalAggregate | None
) -> str:
    """A digest identifying the code generated for one pipeline fragment.

    Serializes exactly the plan properties ``_PipelineCompiler`` consults
    while emitting source: fused filters/projections (as bound SQL text),
    each fused join's probe-side metadata, and — in aggregate mode — the
    group keys and aggregate arguments. Equal signatures generate equal
    source, so the compiled function and its hoisted-constant environment
    template are interchangeable.
    """
    parts: list[str] = [f"mode={mode}"]
    current = node
    while True:
        if isinstance(current, PhysicalScan):
            filters = ";".join(f.to_sql() for f in current.filters)
            parts.append(f"scan[{filters}]")
            break
        if isinstance(current, PhysicalFilter):
            parts.append(f"filter[{current.condition.to_sql()}]")
            current = current.child
            continue
        if isinstance(current, PhysicalProject):
            exprs = ";".join(e.to_sql() for e in current.expressions)
            parts.append(f"project[{exprs}]")
            current = current.child
            continue
        if isinstance(current, PhysicalHashJoin):
            build_node = (
                current.right if current.build_right else current.left
            )
            residual = (
                current.residual.to_sql()
                if current.residual is not None
                else ""
            )
            parts.append(
                "join["
                f"kind={current.kind.name},"
                f"build_right={current.build_right},"
                f"keys={tuple(current.keys)},"
                f"null_width={len(build_node.output)},"
                f"residual={residual}]"
            )
            current = current.left if current.build_right else current.right
            continue
        raise ExecutionError(
            f"node {type(current).__name__} cannot be fused into a pipeline"
        )
    if mode == "aggregate" and aggregate is not None:
        groups = ";".join(e.to_sql() for e in aggregate.group_exprs)
        args = ";".join(
            "*" if call.argument is None else call.argument.to_sql()
            for call in aggregate.aggregates
        )
        parts.append(f"aggregate[groups={groups};args={args}]")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def pipeline_joins(node: PhysicalNode) -> list[PhysicalHashJoin]:
    """The fused joins of *node*'s pipeline, in codegen emission order.

    ``_PipelineCompiler`` appends joins while descending the probe spine
    top-down, and the generated code indexes its prebuilt hash tables
    (``_ht0``, ``_ht1`` ...) in that order. A cached function must be fed
    tables built from the *current* plan's join nodes — build sides are
    materialized per query — so this walk re-derives them.
    """
    joins: list[PhysicalHashJoin] = []
    current = node
    while not isinstance(current, PhysicalScan):
        if isinstance(current, (PhysicalFilter, PhysicalProject)):
            current = current.child
        elif isinstance(current, PhysicalHashJoin):
            joins.append(current)
            current = current.left if current.build_right else current.right
        else:
            raise ExecutionError(
                f"no pipeline source under {type(current).__name__}"
            )
    return joins


@dataclass
class SegmentEntry:
    """One cached compiled pipeline."""

    signature: str
    mode: str
    fn: Callable
    env_template: dict
    hits: int = field(default=0)


class SegmentCache:
    """LRU of fragment signature -> compiled pipeline function."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, SegmentEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Stores that found the signature already present and kept the
        #: existing entry — concurrent sessions compiling the same
        #: fragment race to store, and first-store-wins preserves the
        #: incumbent's hit counter (equal signatures generate equal
        #: code, so any copy is interchangeable).
        self.duplicate_stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, signature: str) -> SegmentEntry | None:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(signature)
            self.hits += 1
            entry.hits += 1
            return entry

    def store(
        self, signature: str, mode: str, fn: Callable, env_template: dict
    ) -> None:
        with self._lock:
            if signature in self._entries:
                self._entries.move_to_end(signature)
                self.duplicate_stores += 1
                return
            self._entries[signature] = SegmentEntry(
                signature=signature, mode=mode, fn=fn,
                env_template=env_template,
            )
            self.stores += 1
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def entries(self) -> list[SegmentEntry]:
        """A stable snapshot of the current entries (svl_compile_cache)."""
        with self._lock:
            return list(self._entries.values())
