"""Memory-governed operator state: budgets and spill-to-disk structures.

The per-query :class:`MemoryBudget` (derived from the admitting WLM
queue's per-slot share, or set explicitly with ``SET query_memory_limit``)
is charged by the three operator-state structures that otherwise grow
without bound: hash-join build tables, aggregation state maps and sort
buffers. When a structure pushes the budget over its limit it spills to
accounted temp files (:mod:`repro.storage.spillfile`) on the owning
slice's simulated disk — grace-hash partitioning for hash state,
sorted-run generation with a k-way merge for sorts — and processes the
spilled partitions with bounded memory, releasing what it wrote.

Two invariants, enforced by the parity property suite:

* **Bit-identical results.** Spilled execution emits exactly the rows,
  in exactly the order, of unbounded execution. Hash-table key-list
  order, aggregate first-seen group order and sort stability are all
  preserved (spilled aggregate generations carry their first-seen
  sequence number; sorted runs merge stably).
* **Honest accounting.** Row payloads stay in process memory — the same
  simulation stance as :class:`~repro.storage.disk.SimulatedDisk` — but
  every spill write/read/delete is accounted on the disk, so media
  faults, capacity exhaustion and ``used_bytes`` behave exactly as they
  would for block IO, and the budget's ``peak_bytes`` traces the
  partition-at-a-time memory profile of a real grace-hash/merge-sort.
"""

from __future__ import annotations

import heapq
import zlib


class MemoryBudget:
    """Charge/release accounting for one query's operator state.

    ``limit_bytes`` of None means unbounded — the budget still tracks
    usage (``peak_bytes`` feeds the working-set measurements in bench
    a13) but nothing ever spills.
    """

    def __init__(self, limit_bytes: int | None = None):
        self.limit_bytes = limit_bytes
        self.used_bytes = 0
        self.peak_bytes = 0

    def charge(self, nbytes: int) -> None:
        self.used_bytes += nbytes
        if self.used_bytes > self.peak_bytes:
            self.peak_bytes = self.used_bytes

    def release(self, nbytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - nbytes)

    @property
    def over_budget(self) -> bool:
        return self.limit_bytes is not None and (
            self.used_bytes > self.limit_bytes
        )


#: Exact-type fast path for the scalar types the engine produces; the
#: sizes are deterministic estimates (platform-independent, so budgets
#: and spill accounting reproduce across runs and machines).
_SCALAR_NBYTES = {type(None): 8, bool: 8, int: 28, float: 24}


def value_nbytes(value: object) -> int:
    """Deterministic per-value size estimate."""
    nbytes = _SCALAR_NBYTES.get(type(value))
    if nbytes is not None:
        return nbytes
    if isinstance(value, bool):
        return 8
    if isinstance(value, int):
        return 28
    if isinstance(value, float):
        return 24
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (tuple, list)):
        return 24 + sum(value_nbytes(v) for v in value)
    return 48


def row_nbytes(row) -> int:
    """Estimated in-memory bytes of one row/key tuple or state list.

    Called once per inserted row/key on every governed operator — the
    plain loop with the exact-type table is measurably faster than
    ``sum`` over a generator of :func:`value_nbytes` calls.
    """
    total = 24
    scalars = _SCALAR_NBYTES
    for value in row:
        nbytes = scalars.get(type(value))
        total += nbytes if nbytes is not None else value_nbytes(value)
    return total


def partition_of(key, partitions: int) -> int:
    """Stable partition assignment for a group/join key tuple."""
    return zlib.crc32(repr(key).encode()) % partitions


SPILL_PARTITIONS_DEFAULT = 8


def _chunk_bytes(budget: MemoryBudget, partitions: int) -> int:
    """Per-partition write-buffer size: bounded so the buffers together
    stay within the budget that forced the spill."""
    limit = budget.limit_bytes if budget.limit_bytes else 64 * 1024
    return max(512, limit // partitions)


class SpillableHashTable:
    """A hash-join build table that grace-hash partitions when over budget.

    In-memory phase: a plain ``key -> [rows]`` dict charged against the
    budget. Crossing the limit partitions every entry (and all later
    inserts) to ``partitions`` accounted temp files by stable key hash.
    :meth:`build` then re-reads the partitions one at a time — charging
    only a partition against the budget, the real grace-hash memory
    profile — and reassembles the table for the unchanged probe loop, so
    probe-order output and per-key row order are bit-identical to the
    in-memory run.
    """

    def __init__(
        self,
        budget: MemoryBudget,
        file_factory,
        label: str,
        partitions: int = SPILL_PARTITIONS_DEFAULT,
    ):
        self._budget = budget
        self._files = [file_factory(f"{label}.p{i}") for i in range(partitions)]
        self._partitions = partitions
        self._table: dict[tuple, list] = {}
        self._charged = 0
        self._buffers: list[list] = [[] for _ in range(partitions)]
        self._buffer_bytes = [0] * partitions
        self._chunk = _chunk_bytes(budget, partitions)
        self.spilled = False
        self.partitions_spilled = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def insert(self, key: tuple, row: tuple) -> None:
        nbytes = row_nbytes(key) + row_nbytes(row)
        if not self.spilled:
            self._table.setdefault(key, []).append(row)
            self._charged += nbytes
            self._budget.charge(nbytes)
            if self._budget.over_budget:
                self._partition_out()
            return
        p = partition_of(key, self._partitions)
        self._buffers[p].append((key, row))
        self._buffer_bytes[p] += nbytes
        if self._buffer_bytes[p] >= self._chunk:
            self._flush(p)

    def _partition_out(self) -> None:
        """First over-budget insert: move the whole table to partitions."""
        self.spilled = True
        for key, rows in self._table.items():
            p = partition_of(key, self._partitions)
            buffer = self._buffers[p]
            nbytes = row_nbytes(key)
            for row in rows:
                buffer.append((key, row))
            self._buffer_bytes[p] += sum(
                nbytes + row_nbytes(row) for row in rows
            )
        self._table = {}
        for p in range(self._partitions):
            if self._buffer_bytes[p] >= self._chunk:
                self._flush(p)
        self._budget.release(self._charged)
        self._charged = 0

    def _flush(self, p: int) -> None:
        if not self._buffers[p]:
            return
        nbytes = self._buffer_bytes[p]
        self._files[p].write(self._buffers[p], nbytes)
        self.bytes_written += nbytes
        self._buffers[p] = []
        self._buffer_bytes[p] = 0

    def build(self) -> dict:
        """The complete build table, re-read partition by partition."""
        if not self.spilled:
            return self._table
        for p in range(self._partitions):
            self._flush(p)
        table: dict[tuple, list] = {}
        for p, spill_file in enumerate(self._files):
            if spill_file.bytes_written == 0:
                continue
            self.partitions_spilled += 1
            nbytes = spill_file.bytes_written
            self._budget.charge(nbytes)  # one partition resident at a time
            for key, row in spill_file.read():
                table.setdefault(key, []).append(row)
            self.bytes_read += nbytes
            self._budget.release(nbytes)
            spill_file.release()
        return table

    def done(self) -> None:
        """Probe phase over: release the build table's budget charge."""
        self._budget.release(self._charged)
        self._charged = 0


class SpillableAggregateStates(dict):
    """A ``group key -> state list`` map that flushes to disk over budget.

    A drop-in dict for every accumulation loop (volcano rows, vectorized
    batches, the compiled executor's generated code, leader partial
    merges): callers ``get``/``__setitem__`` new keys and mutate state
    lists in place. Each new key is charged against the budget and
    stamped with a first-seen sequence number. Crossing the limit
    flushes every live ``(seq, key, state)`` to its hash partition and
    clears the map, so later rows of a flushed key open a fresh
    generation — while rows of keys still resident keep accumulating
    in place for free, which is what makes governed execution cheap on
    key-clustered data. :meth:`finish` re-reads the partitions (a
    partition at a time against the budget), merges generations of the
    same key with ``agg.merge`` — every generation of a key carries the
    key's first-seen sequence — and returns a plain dict ordered by
    that sequence: exactly the insertion order an unbounded run would
    have produced, so downstream row emission is bit-identical.
    """

    def __init__(
        self,
        budget: MemoryBudget,
        file_factory,
        label: str,
        aggregates,
        partitions: int = SPILL_PARTITIONS_DEFAULT,
    ):
        super().__init__()
        self._budget = budget
        self._files = [file_factory(f"{label}.p{i}") for i in range(partitions)]
        self._partitions = partitions
        self._aggregates = aggregates
        self._charged = 0
        #: Smallest in-memory generation worth flushing: with a shared
        #: budget held over the limit by *other* operator state,
        #: flushing on every new key would write one-key generations
        #: forever. Requiring a chunk's worth of live state first
        #: amortizes the writes (the map itself stays bounded by one
        #: chunk, so memory is still governed).
        self._min_generation = _chunk_bytes(budget, partitions)
        self._next_seq = 0
        #: Per-key bookkeeping that persists across generations:
        #: ``key -> (first_seen_seq, nbytes, partition)``. finish()
        #: orders by first-seen sequence, so re-stamping a flushed key
        #: with its original sequence is equivalent — and the hot insert
        #: path skips re-hashing and re-measuring keys it has seen
        #: before (a key's state-list shape is fixed for the query, so
        #: its first-generation size estimate holds). Bookkeeping only
        #: (like the file handles): the governed state is the entries,
        #: charged below.
        self._keyinfo: dict = {}
        self.spilled = False
        self.partitions_spilled = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def __setitem__(self, key, entry) -> None:
        info = self._keyinfo.get(key)
        if info is None:
            info = (
                self._next_seq,
                row_nbytes(key) + row_nbytes(entry),
                partition_of(key, self._partitions),
            )
            self._next_seq += 1
            self._keyinfo[key] = info
        nbytes = info[1]
        budget = self._budget
        budget.used_bytes += nbytes
        if budget.used_bytes > budget.peak_bytes:
            budget.peak_bytes = budget.used_bytes
        self._charged += nbytes
        super().__setitem__(key, entry)
        if (
            budget.limit_bytes is not None
            and budget.used_bytes > budget.limit_bytes
            and self._charged >= self._min_generation
        ):
            self._flush_generation()

    def _flush_generation(self) -> None:
        """Spill every live state to its partition and start fresh.

        States are spilled by reference — rows stay in process memory —
        so in-place accumulation into an entry the caller still holds
        keeps updating the spilled generation, exactly as the bytes on a
        real disk would have been written only once the generation went
        cold. The accounting writes happen here, at flush time.
        """
        self.spilled = True
        buffers: list[list] = [[] for _ in range(self._partitions)]
        buffer_bytes = [0] * self._partitions
        keyinfo = self._keyinfo
        for key, entry in self.items():
            seq, nbytes, p = keyinfo[key]
            buffers[p].append((seq, key, entry))
            buffer_bytes[p] += nbytes
        for p in range(self._partitions):
            if buffers[p]:
                self._files[p].write(buffers[p], buffer_bytes[p])
                self.bytes_written += buffer_bytes[p]
        self.clear()
        self._budget.release(self._charged)
        self._charged = 0

    def finish(self) -> dict:
        """The complete state map in first-seen order (a plain dict).

        Also releases the map's budget charge — the states hand off to
        row emission, so their governed lifetime ends here.
        """
        if not self.spilled:
            self._budget.release(self._charged)
            self._charged = 0
            return self
        if self:
            self._flush_generation()
        merges = [agg.merge for agg in self._aggregates]
        # Every generation of a key carries the key's first-seen seq
        # (from _keyinfo), so merging just folds entries per key; the
        # final ordering comes straight from _keyinfo.
        collected: dict[tuple, list] = {}
        for spill_file in self._files:
            if spill_file.bytes_written == 0:
                continue
            self.partitions_spilled += 1
            nbytes = spill_file.bytes_written
            self._budget.charge(nbytes)
            for _seq, key, entry in spill_file.read():
                target = collected.get(key)
                if target is None:
                    collected[key] = entry
                else:
                    target[:] = [
                        m(t, e) for m, t, e in zip(merges, target, entry)
                    ]
            self.bytes_read += nbytes
            self._budget.release(nbytes)
            spill_file.release()
        keyinfo = self._keyinfo
        ordered = sorted(collected.items(), key=lambda item: keyinfo[item[0]][0])
        return dict(ordered)


class SpillableSorter:
    """External merge sort: budget-sized sorted runs, k-way stable merge.

    ``sort_chunk`` must be the engine's stable sort (so each run orders
    rows exactly as the in-memory path would) and ``merge_key`` a
    composite key with the same comparison semantics; ``heapq.merge`` is
    stable across runs (earlier run wins ties), so the merged output is
    bit-identical to sorting the whole input in memory.
    """

    def __init__(self, budget: MemoryBudget, file_factory, label: str):
        self._budget = budget
        self._file_factory = file_factory
        self._label = label
        self.spilled = False
        self.partitions_spilled = 0  # sorted runs, for uniform reporting
        self.bytes_written = 0
        self.bytes_read = 0

    def sort(self, rows: list, sort_chunk, merge_key) -> list:
        sizes = [row_nbytes(row) for row in rows]
        total = sum(sizes)
        self._budget.charge(total)
        if not self._budget.over_budget:
            out = sort_chunk(rows)
            self._budget.release(total)
            return out
        self._budget.release(total)
        self.spilled = True
        limit = max(1, self._budget.limit_bytes)
        runs = []
        start = 0
        chunk_bytes = 0
        for i, nbytes in enumerate(sizes):
            if chunk_bytes + nbytes > limit and i > start:
                runs.append((start, i, chunk_bytes))
                start = i
                chunk_bytes = 0
            chunk_bytes += nbytes
        runs.append((start, len(rows), chunk_bytes))
        run_files = []
        for r, (lo, hi, nbytes) in enumerate(runs):
            self._budget.charge(nbytes)
            run = sort_chunk(rows[lo:hi])
            spill_file = self._file_factory(f"{self._label}.run{r}")
            spill_file.write(run, nbytes)
            self.bytes_written += nbytes
            self._budget.release(nbytes)
            run_files.append(spill_file)
        self.partitions_spilled = len(run_files)
        streams = []
        for spill_file in run_files:
            streams.append(spill_file.read())
            self.bytes_read += spill_file.bytes_written
        merged = list(heapq.merge(*streams, key=merge_key))
        for spill_file in run_files:
            spill_file.release()
        return merged


class LogSpillFile:
    """Worker-side spill file: rows stay local, IO goes to an op log.

    Parallel workers compute no side effects on shared engine state, so
    their spill IO is recorded as ``(op, nbytes)`` tuples and replayed
    through the owning slice's disk by the leader in morsel order (the
    same discipline as scan ``io_log``) — which is where media faults,
    capacity checks and ``used_bytes`` accounting actually happen.
    """

    def __init__(self, log: "SpillLog", label: str):
        self._log = log
        self.label = label
        self.rows: list = []
        self.bytes_written = 0

    def write(self, rows: list, nbytes: int) -> None:
        self._log.ops.append(("write", nbytes))
        self.rows.extend(rows)
        self.bytes_written += nbytes

    def read(self) -> list:
        self._log.ops.append(("read", self.bytes_written))
        return self.rows

    def release(self) -> None:
        if self.bytes_written:
            self._log.ops.append(("delete", self.bytes_written))
            self.bytes_written = 0


class SpillLog:
    """One morsel's spill op log and the files that feed it."""

    def __init__(self) -> None:
        self.ops: list[tuple[str, int]] = []
        self._files: list[LogSpillFile] = []

    def file_factory(self):
        def create(label: str) -> LogSpillFile:
            spill_file = LogSpillFile(self, label)
            self._files.append(spill_file)
            return spill_file

        return create

    def release_all(self) -> None:
        for spill_file in self._files:
            spill_file.release()
