"""Block-aligned shard scans with zone-map skipping and MVCC visibility.

All chains of a shard are appended in lockstep with the same block
capacity, so block *k* covers the same row offsets in every column. A
scan therefore consults the zone maps of the predicate columns per block,
and either skips the block in every needed chain or reads it from every
needed chain — row alignment across columns is preserved by construction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.transactions import Snapshot
from repro.exec.encoded import (
    ENC_BLOCKS,
    ENC_BYTES_AVOIDED,
    ENC_VALUES,
    ENC_WIDTH,
    EncodedColumn,
    supports_block,
)
from repro.storage.chain import ScanStats
from repro.storage.disk import SimulatedDisk
from repro.storage.slicestore import TableShard


def scan_shard(
    shard: TableShard,
    column_names: Sequence[str | None],
    zone_predicates: Sequence[tuple[int, str, object]],
    snapshot: Snapshot,
    stats: ScanStats | None = None,
    disk: SimulatedDisk | None = None,
) -> Iterator[tuple]:
    """Yield visible rows (tuples of the named columns) from one shard.

    A ``None`` entry in *column_names* is a dead column: its chain is
    never read and its tuple slot holds None — this is the projection
    pushdown a columnar engine exists for (only live chains cost IO).

    ``zone_predicates`` hold (index into *column_names*, op, literal); a
    block is skipped when any predicate's zone map proves it empty of
    matches. Skipping is conservative — surviving rows are re-checked by
    the caller's filters. Predicate columns must be live.

    Stats count logical row blocks once each (``blocks_total`` /
    ``blocks_read`` / ``blocks_skipped``); the per-column chain-block
    reads are ``chains_read``.
    """
    width = len(column_names)
    if width == 0:
        return
    live = [
        (position, shard.chain(name))
        for position, name in enumerate(column_names)
        if name is not None
    ]
    insert_xids = shard.insert_xids
    delete_xids = shard.delete_xids

    if not live:
        # Pure row-count scans (e.g. unfiltered COUNT(*)): no chain IO,
        # rows synthesized from visibility metadata alone.
        empty = (None,) * width
        for offset in range(shard.row_count):
            if snapshot.can_see(insert_xids[offset], delete_xids[offset]):
                yield empty
        return

    live_positions = {position: i for i, (position, _) in enumerate(live)}
    blocks_per_chain = [chain.blocks for _, chain in live]
    block_count = len(blocks_per_chain[0])

    offset = 0
    for k in range(block_count):
        row_count = blocks_per_chain[0][k].count
        skip = False
        for col_pos, op, literal in zone_predicates:
            chain_index = live_positions[col_pos]
            if not blocks_per_chain[chain_index][k].zone_map.might_satisfy(
                op, literal
            ):
                skip = True
                break
        if stats is not None:
            stats.blocks_total += 1
            if skip:
                stats.blocks_skipped += 1
            else:
                stats.blocks_read += 1
        if skip:
            offset += row_count
            continue
        row_template: list = [None] * width
        columns = []
        for chain_blocks in blocks_per_chain:
            block = chain_blocks[k]
            if stats is not None:
                stats.chains_read += 1
                stats.bytes_read += block.encoded_bytes
                stats.values_read += block.count
            if disk is not None:
                disk.record_read(block.encoded_bytes)
            columns.append(block.read())
        # Fast path: when every row in the block is visible (no tombstones,
        # all inserters visible), emit rows in bulk.
        end = offset + row_count
        fully_visible = _block_fully_visible(
            insert_xids, delete_xids, offset, end, snapshot
        )
        if len(live) == width and fully_visible:
            yield from zip(*columns)
        else:
            positions = [position for position, _ in live]
            for i in range(row_count):
                row_offset = offset + i
                if fully_visible or snapshot.can_see(
                    insert_xids[row_offset], delete_xids[row_offset]
                ):
                    row = row_template.copy()
                    for position, col in zip(positions, columns):
                        row[position] = col[i]
                    yield tuple(row)
        offset += row_count

    # Open tail buffers (rows loaded but not yet sealed into blocks).
    tails = [(position, chain.tail_values) for position, chain in live]
    tail_count = len(tails[0][1])
    for i in range(tail_count):
        row_offset = offset + i
        if snapshot.can_see(insert_xids[row_offset], delete_xids[row_offset]):
            row = [None] * width
            for position, tail in tails:
                row[position] = tail[i]
            yield tuple(row)
    if stats is not None and tail_count:
        stats.values_read += tail_count * len(live)


def shard_block_count(shard: TableShard) -> int:
    """Number of sealed row blocks in *shard* (chains are in lockstep)."""
    if not shard.chains:
        return 0
    return len(next(iter(shard.chains.values())).blocks)


def scan_shard_morsel(
    shard: TableShard,
    column_names: Sequence[str | None],
    zone_predicates: Sequence[tuple[int, str, object]],
    snapshot: Snapshot,
    block_start: int,
    block_end: int,
    include_tail: bool,
    stats: ScanStats | None = None,
    io_log: list[int] | None = None,
) -> Iterator[tuple]:
    """Yield visible rows from the block range [*block_start*, *block_end*).

    The morsel-sized twin of :func:`scan_shard` for the parallel
    executor: identical zone-map skipping, MVCC visibility and stats
    accounting, restricted to a contiguous range of row blocks (plus the
    open tail buffers when *include_tail* — exactly one morsel per shard
    carries the tail). Concatenating every morsel of a shard in block
    order reproduces the serial scan row-for-row and stat-for-stat.

    Instead of charging a :class:`SimulatedDisk` directly, chain-block
    reads append their encoded byte counts to *io_log*; workers run
    without their slice's disk object and the leader replays the log
    through ``disk.record_read`` in morsel order, so disk accounting and
    injected media faults fire in the same sequence as a serial scan.
    """
    width = len(column_names)
    if width == 0:
        return
    live = [
        (position, shard.chain(name))
        for position, name in enumerate(column_names)
        if name is not None
    ]
    insert_xids = shard.insert_xids
    delete_xids = shard.delete_xids

    if not live:
        # Pure row-count scans: synthesize rows from visibility metadata
        # for the offsets this morsel's block range (and tail) covers.
        reference = (
            next(iter(shard.chains.values())) if shard.chains else None
        )
        blocks = reference.blocks if reference is not None else []
        start = sum(block.count for block in blocks[:block_start])
        end = start + sum(
            block.count for block in blocks[block_start:block_end]
        )
        ranges = [(start, end)]
        if include_tail:
            sealed = sum(block.count for block in blocks)
            ranges.append((sealed, shard.row_count))
        empty = (None,) * width
        for lo, hi in ranges:
            for offset in range(lo, hi):
                if snapshot.can_see(insert_xids[offset], delete_xids[offset]):
                    yield empty
        return

    live_positions = {position: i for i, (position, _) in enumerate(live)}
    blocks_per_chain = [chain.blocks for _, chain in live]

    offset = sum(block.count for block in blocks_per_chain[0][:block_start])
    for k in range(block_start, block_end):
        row_count = blocks_per_chain[0][k].count
        skip = False
        for col_pos, op, literal in zone_predicates:
            chain_index = live_positions[col_pos]
            if not blocks_per_chain[chain_index][k].zone_map.might_satisfy(
                op, literal
            ):
                skip = True
                break
        if stats is not None:
            stats.blocks_total += 1
            if skip:
                stats.blocks_skipped += 1
            else:
                stats.blocks_read += 1
        if skip:
            offset += row_count
            continue
        row_template: list = [None] * width
        columns = []
        for chain_blocks in blocks_per_chain:
            block = chain_blocks[k]
            if stats is not None:
                stats.chains_read += 1
                stats.bytes_read += block.encoded_bytes
                stats.values_read += block.count
            if io_log is not None:
                io_log.append(block.encoded_bytes)
            columns.append(block.read())
        end = offset + row_count
        fully_visible = _block_fully_visible(
            insert_xids, delete_xids, offset, end, snapshot
        )
        if len(live) == width and fully_visible:
            yield from zip(*columns)
        else:
            positions = [position for position, _ in live]
            for i in range(row_count):
                row_offset = offset + i
                if fully_visible or snapshot.can_see(
                    insert_xids[row_offset], delete_xids[row_offset]
                ):
                    row = row_template.copy()
                    for position, col in zip(positions, columns):
                        row[position] = col[i]
                    yield tuple(row)
        offset += row_count

    if not include_tail:
        return
    # Open tail buffers (rows loaded but not yet sealed into blocks).
    tail_offset = sum(block.count for block in blocks_per_chain[0])
    tails = [(position, chain.tail_values) for position, chain in live]
    tail_count = len(tails[0][1])
    for i in range(tail_count):
        row_offset = tail_offset + i
        if snapshot.can_see(insert_xids[row_offset], delete_xids[row_offset]):
            row = [None] * width
            for position, tail in tails:
                row[position] = tail[i]
            yield tuple(row)
    if stats is not None and tail_count:
        stats.values_read += tail_count * len(live)


def scan_shard_batches(
    shard: TableShard,
    column_names: Sequence[str | None],
    zone_predicates: Sequence[tuple[int, str, object]],
    snapshot: Snapshot,
    stats: ScanStats | None = None,
    disk: SimulatedDisk | None = None,
    block_cache=None,
    encoded: bool = False,
) -> Iterator["ColumnBatch"]:
    """Yield visible rows as :class:`ColumnBatch`es, one per surviving block.

    The column-vector twin of :func:`scan_shard`: same zone-map skipping,
    MVCC visibility and IO accounting, but each block's decoded columns
    are handed onward as whole vectors instead of being re-zipped into
    row tuples. When every row of a block is visible the decoded lists
    are passed through without copying — this is where the batch engine's
    decode-once economics come from.

    *block_cache* (a :class:`repro.storage.blockcache.BlockDecodeCache`)
    serves decoded vectors across queries; cache hits skip the simulated
    disk read and byte accounting (the IO they avoid) while block/value
    counts stay identical to the row path.

    With *encoded* (``SET enable_encoded_scan``), blocks whose codec the
    kernels can execute on directly (``OPERATE_ON_COMPRESSED``) are handed
    onward as verified-but-undecoded :class:`EncodedColumn`s instead of
    decoded lists — unless the decode cache already holds the decoded
    vector, which is cheaper still. Encoded reads are verified against the
    payload checksum without decoding, charge the disk normally, and are
    neither cache hits nor misses (no decode was requested).
    """
    from repro.exec.batch import ColumnBatch

    width = len(column_names)
    if width == 0:
        return
    live = [
        (position, shard.chain(name))
        for position, name in enumerate(column_names)
        if name is not None
    ]
    insert_xids = shard.insert_xids
    delete_xids = shard.delete_xids

    if not live:
        # Pure row-count scans: no chain IO, one batch of all-dead columns
        # sized by visibility metadata alone.
        visible = sum(
            1
            for offset in range(shard.row_count)
            if snapshot.can_see(insert_xids[offset], delete_xids[offset])
        )
        if visible:
            yield ColumnBatch([None] * width, visible)
        return

    live_positions = {position: i for i, (position, _) in enumerate(live)}
    blocks_per_chain = [chain.blocks for _, chain in live]
    block_count = len(blocks_per_chain[0])

    offset = 0
    for k in range(block_count):
        row_count = blocks_per_chain[0][k].count
        skip = False
        for col_pos, op, literal in zone_predicates:
            chain_index = live_positions[col_pos]
            if not blocks_per_chain[chain_index][k].zone_map.might_satisfy(
                op, literal
            ):
                skip = True
                break
        if stats is not None:
            stats.blocks_total += 1
            if skip:
                stats.blocks_skipped += 1
            else:
                stats.blocks_read += 1
        if skip:
            offset += row_count
            continue
        vectors = []
        for chain_blocks in blocks_per_chain:
            block = chain_blocks[k]
            hit = False
            enc_used = False
            if encoded and supports_block(block):
                # A resident decoded vector is cheaper than the payload;
                # otherwise verify the payload bytes (no decode) and hand
                # the compressed column straight to the kernels.
                cached = (
                    block_cache.peek(block) if block_cache is not None else None
                )
                if cached is not None:
                    values, hit = cached, True
                else:
                    block.verify_checksum()
                    values = EncodedColumn(block, stats)
                    enc_used = True
                    if stats is not None:
                        entry = stats.encoding.setdefault(
                            block.codec_name, [0] * ENC_WIDTH
                        )
                        avoided = (
                            block.count * block.vector.sql_type.byte_width
                        )
                        entry[ENC_BLOCKS] += 1
                        entry[ENC_VALUES] += block.count
                        entry[ENC_BYTES_AVOIDED] += avoided
                        stats.decode_bytes_avoided += avoided
            elif block_cache is not None:
                values, hit = block_cache.lookup(block)
            else:
                values, hit = block.read_vector(), False
            if stats is not None:
                stats.chains_read += 1
                stats.values_read += block.count
                if hit:
                    stats.cache_hits += 1
                else:
                    stats.bytes_read += block.encoded_bytes
                    if not enc_used:
                        stats.cache_misses += 1
            if not hit and disk is not None:
                disk.record_read(block.encoded_bytes)
            vectors.append(values)
        end = offset + row_count
        columns: list = [None] * width
        if _block_fully_visible(insert_xids, delete_xids, offset, end, snapshot):
            batch_encoded = 0
            for (position, _), values in zip(live, vectors):
                columns[position] = values
                if type(values) is EncodedColumn:
                    batch_encoded += 1
            if batch_encoded and stats is not None:
                stats.encoded_batches += 1
            yield ColumnBatch(columns, row_count)
        else:
            selection = [
                i
                for i in range(row_count)
                if snapshot.can_see(
                    insert_xids[offset + i], delete_xids[offset + i]
                )
            ]
            if selection:
                for (position, _), values in zip(live, vectors):
                    if type(values) is EncodedColumn:
                        columns[position] = values.gather(selection)
                    else:
                        columns[position] = [values[i] for i in selection]
                yield ColumnBatch(columns, len(selection))
        offset += row_count

    # Open tail buffers (rows loaded but not yet sealed into blocks).
    tails = [chain.tail_values for _, chain in live]
    tail_count = len(tails[0])
    if tail_count:
        selection = [
            i
            for i in range(tail_count)
            if snapshot.can_see(insert_xids[offset + i], delete_xids[offset + i])
        ]
        if selection:
            columns = [None] * width
            for (position, _), tail in zip(live, tails):
                columns[position] = [tail[i] for i in selection]
            yield ColumnBatch(columns, len(selection))
        if stats is not None:
            stats.values_read += tail_count * len(live)


def _block_fully_visible(
    insert_xids: list[int],
    delete_xids: list[int | None],
    start: int,
    end: int,
    snapshot: Snapshot,
) -> bool:
    """True when every row in [start, end) is visible to *snapshot*.

    Checked via the distinct inserter set (typically one xid per block)
    rather than per row, so the common no-deletes case stays O(1)-ish.
    """
    for dele in delete_xids[start:end]:
        if dele is not None:
            return False
    for ins in set(insert_xids[start:end]):
        if not snapshot.can_see(ins, None):
            return False
    return True


def visible_offsets(shard: TableShard, snapshot: Snapshot) -> list[int]:
    """Row offsets visible to *snapshot* (used by DELETE/UPDATE targeting)."""
    return [
        i
        for i, (ins, dele) in enumerate(zip(shard.insert_xids, shard.delete_xids))
        if snapshot.can_see(ins, dele)
    ]
