"""Operate-on-compressed column views for the vectorized executor.

An :class:`EncodedColumn` wraps a block whose codec the execution engine
can consume *without decoding* (see ``codecs.OPERATE_ON_COMPRESSED``):

- comparison and BETWEEN predicates evaluate on **dictionary codes** — the
  literal is compared against the (≤255-entry) dictionary once and the mask
  is a table lookup per code;
- **RLE** predicates compare once per run and replicate the verdict;
  count/sum/min/max aggregates fold whole runs without expansion (see
  ``Aggregate.accumulate_run``);
- **MOSTLY** predicates compare the stored integer images against the
  literal's image (the image maps are strictly monotonic, so order and
  equality are preserved);
- projections **late-materialize**: ``gather`` decodes only the positions a
  filter selected.

The kernel contract (DESIGN.md §13): an ``EncodedColumn`` may appear in
``ColumnBatch.columns`` wherever a decoded list may; ``batch.column(i)``
materializes it in place, so every consumer that does not understand
encoded data transparently falls back to the decoded path — which is what
keeps the four executors bit-identical. Methods returning ``None`` mean
"cannot answer without decoding"; callers must then use the fallback.

NULL handling mirrors the decoded kernels exactly: codecs store only
present values plus a null-position set, so masks are computed over the
present sequence and spliced to ``False`` at null positions (SQL
comparisons with NULL are never TRUE).
"""

from __future__ import annotations

import datetime
import decimal
import operator
from bisect import bisect_right

from repro.compression.codecs import (
    OPERATE_ON_COMPRESSED,
    _from_int_image,
    _to_int_image,
)
from repro.datatypes.types import TypeKind

#: Indexes into ScanStats.encoding[codec] count vectors.
ENC_BLOCKS = 0
ENC_VALUES = 1
ENC_BYTES_AVOIDED = 2
ENC_MASKS = 3
ENC_FOLDS = 4
ENC_GATHERS = 5
ENC_WIDTH = 6

#: Human-readable pushdown kinds per codec, for EXPLAIN ANALYZE.
PUSHDOWN_KIND = {
    "bytedict": "dict-pushdown",
    "runlength": "rle-fold",
    "mostly8": "mostly-image",
    "mostly16": "mostly-image",
    "mostly32": "mostly-image",
}

_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ESCAPE = 255  # ByteDictCodec._ESCAPE


def supports_block(block) -> bool:
    """Whether *block* can be scanned without decoding."""
    return block.vector.codec_name in OPERATE_ON_COMPRESSED


class EncodedColumn:
    """A column vector still in its compressed form.

    Quacks enough like a value list (``len``/``iter``/``getitem``) that
    generic consumers work — those paths materialize. The fast paths
    (``compare_mask``, ``gather``, ``runs``) are what the vectorized
    kernels call when they recognize the type.
    """

    __slots__ = (
        "block",
        "vector",
        "codec_name",
        "stats",
        "_present_positions",
        "_sorted_nulls",
        "_materialized",
        "_rle_ends",
    )

    def __init__(self, block, stats=None):
        self.block = block
        self.vector = block.vector
        self.codec_name = self.vector.codec_name
        self.stats = stats
        self._present_positions = None
        self._sorted_nulls = None
        self._rle_ends = None
        self._materialized = None

    # ---- list protocol (generic fallback) ---------------------------------

    @property
    def count(self) -> int:
        return self.vector.count

    def __len__(self) -> int:
        return self.vector.count

    def __iter__(self):
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def materialize(self) -> list:
        """The fully decoded value list (the universal fallback).

        Memoized on the column — whose lifetime is one batch — so
        repeated materialization costs one decode without retaining the
        decoded list for the life of the block.
        """
        if self._materialized is None:
            self._materialized = self.block.read_vector()
        return self._materialized

    # ---- late materialization ---------------------------------------------

    def gather(self, selection) -> list:
        """Decode only the values at *selection* (sorted row positions)."""
        if self._materialized is not None:
            return [self._materialized[i] for i in selection]
        if self.codec_name == "bytedict":
            out = self._gather_bytedict(selection)
        elif self.codec_name == "runlength":
            out = self._gather_rle(selection)
        else:
            out = self._gather_mostly(selection)
        if out is None:
            decoded = self.materialize()
            return [decoded[i] for i in selection]
        self._tally(ENC_GATHERS)
        return out

    def _present_index(self, pos: int) -> int:
        """Map a logical row position to its index among present values."""
        nulls = self._sorted_nulls
        if nulls is None:
            nulls = self._sorted_nulls = sorted(self.vector.null_positions)
        return pos - bisect_right(nulls, pos)

    def _gather_bytedict(self, selection):
        ordered, indexes, exceptions = self.vector.payload
        if exceptions:
            # Escapes need a prefix count to find their exception slot;
            # dict overflow is rare enough that decoding wins.
            return None
        nulls = self.vector.null_positions
        if nulls:
            out = []
            for pos in selection:
                if pos in nulls:
                    out.append(None)
                else:
                    out.append(ordered[indexes[self._present_index(pos)]])
            return out
        return [ordered[indexes[pos]] for pos in selection]

    def _gather_rle(self, selection):
        run_values, run_counts = self.vector.payload
        ends = self._rle_ends
        if ends is None:
            ends = []
            total = 0
            for c in run_counts:
                total += c
                ends.append(total)
            self._rle_ends = ends
        nulls = self.vector.null_positions
        out = []
        for pos in selection:
            if pos in nulls:
                out.append(None)
            else:
                i = pos if not nulls else self._present_index(pos)
                out.append(run_values[bisect_right(ends, i)])
        return out

    def _gather_mostly(self, selection):
        _flags, images = self.vector.payload
        sql_type = self.vector.sql_type
        nulls = self.vector.null_positions
        out = []
        for pos in selection:
            if pos in nulls:
                out.append(None)
            else:
                i = pos if not nulls else self._present_index(pos)
                out.append(_from_int_image(images[i], sql_type))
        return out

    # ---- predicate pushdown -----------------------------------------------

    def compare_mask(self, op: str, literal) -> list | None:
        """``[row <op> literal is TRUE]`` computed on encoded data, or
        ``None`` when this codec/operator/literal combination cannot be
        answered without decoding."""
        if literal is None:
            return None
        fn = _OPS.get(op)
        if fn is None:
            return None
        zone = self.block.zone_map
        try:
            if zone is not None:
                if not zone.might_satisfy(op, literal):
                    self._tally(ENC_MASKS)
                    return [False] * self.count
                if zone.must_satisfy(op, literal):
                    self._tally(ENC_MASKS)
                    return [True] * self.count
            if self.codec_name == "bytedict":
                mask = self._bytedict_mask(fn, literal)
            elif self.codec_name == "runlength":
                mask = self._rle_mask(fn, literal)
            else:
                mask = self._mostly_mask(fn, literal)
        except TypeError:
            # Incomparable literal type; let the decoded kernel raise (or
            # not) exactly as it would have.
            return None
        if mask is not None:
            self._tally(ENC_MASKS)
        return mask

    def is_null_mask(self, negated: bool = False) -> list:
        """IS [NOT] NULL needs only the null-position set."""
        nulls = self.vector.null_positions
        self._tally(ENC_MASKS)
        if negated:
            return [i not in nulls for i in range(self.count)]
        return [i in nulls for i in range(self.count)]

    def _bytedict_mask(self, fn, literal):
        ordered, indexes, exceptions = self.vector.payload
        # Translate the literal once: one comparison per distinct value,
        # then the per-row work is an integer-code table lookup.
        table = [bool(fn(v, literal)) for v in ordered]
        if len(table) < 256:
            table.extend([False] * (256 - len(table)))
        if exceptions:
            exc_iter = iter([bool(fn(v, literal)) for v in exceptions])
            present = [
                next(exc_iter) if i == _ESCAPE else table[i] for i in indexes
            ]
        else:
            present = [table[i] for i in indexes]
        return self._splice_nulls(present)

    def _rle_mask(self, fn, literal):
        run_values, run_counts = self.vector.payload
        present: list = []
        for value, count in zip(run_values, run_counts):
            present.extend([bool(fn(value, literal))] * count)
        return self._splice_nulls(present)

    def _mostly_mask(self, fn, literal):
        literal_image = _literal_image(literal, self.vector.sql_type)
        if literal_image is None:
            return None
        _flags, images = self.vector.payload
        present = [bool(fn(image, literal_image)) for image in images]
        return self._splice_nulls(present)

    def _splice_nulls(self, present: list) -> list:
        """Expand a present-values mask to logical positions (NULL=False)."""
        nulls = self.vector.null_positions
        if not nulls:
            return present
        mask = [False] * self.count
        it = iter(present)
        for i in range(self.count):
            if i not in nulls:
                mask[i] = next(it)
        return mask

    # ---- aggregate folds ---------------------------------------------------

    @property
    def is_rle(self) -> bool:
        return self.codec_name == "runlength"

    def foldable_runs(self) -> bool:
        """Whether run folding is exact for this vector's value type.

        Folding regroups the additions an aggregate performs; that is only
        bit-identical where arithmetic is exact, so runs fold only for
        plain ``int`` values (floats and decimals round differently under
        regrouping and take the decoded path).
        """
        run_values, _ = self.vector.payload
        for v in run_values:
            if type(v) is not int:
                return False
        return True

    def runs(self):
        """(value, run_length) pairs over *present* values.

        Only meaningful for RLE; NULLs are omitted because SQL aggregates
        skip them (COUNT(*) never consults the column).
        """
        run_values, run_counts = self.vector.payload
        self._tally(ENC_FOLDS)
        return zip(run_values, run_counts)

    # ---- instrumentation ---------------------------------------------------

    def _tally(self, index: int) -> None:
        stats = self.stats
        if stats is not None:
            entry = stats.encoding.get(self.codec_name)
            if entry is None:
                entry = stats.encoding[self.codec_name] = [0] * ENC_WIDTH
            entry[index] += 1


def _literal_image(literal, sql_type) -> int | None:
    """The integer image of *literal* for MOSTLY comparisons, or None.

    The image maps (identity for integers, ordinal for dates, epoch-µs for
    timestamps, scaled integer for decimals, 0/1 for booleans) are strictly
    monotonic, so comparing images is comparing values — provided the
    literal maps exactly. Anything inexact (a decimal with more fractional
    digits than the column's scale) refuses, forcing the decoded fallback.
    """
    kind = sql_type.kind
    if sql_type.is_integer:
        # int literals compare as themselves; float literals compare
        # against integer images exactly as against the values.
        if type(literal) is int or type(literal) is float:
            return literal
        return None
    if kind is TypeKind.DATE:
        if type(literal) is datetime.date:
            return _to_int_image(literal, sql_type)
        return None
    if kind is TypeKind.TIMESTAMP:
        if type(literal) is datetime.datetime:
            return _to_int_image(literal, sql_type)
        return None
    if kind is TypeKind.DECIMAL:
        if isinstance(literal, decimal.Decimal):
            scaled = literal.scaleb(sql_type.scale)
            if scaled == scaled.to_integral_value():
                return int(scaled)
        return None
    if kind is TypeKind.BOOLEAN:
        if type(literal) is bool:
            return int(literal)
        return None
    return None
