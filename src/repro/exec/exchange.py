"""Data movement between slices: broadcast, shuffle, gather.

Each helper both moves the rows (list manipulation — the engine is one
process) and records on the interconnect the bytes a real cluster would
have transferred. The byte accounting is the measured quantity in the
distribution-strategy experiment (a3).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.distribution.hashing import stable_hash
from repro.exec.context import ExecutionContext

PerSlice = list  # list (over slices) of lists of row tuples


def broadcast(
    per_slice: PerSlice, ctx: ExecutionContext, row_width: int
) -> PerSlice:
    """Replicate all rows to every slice.

    Every row must reach the ``slice_count - 1`` slices that do not already
    hold it; the combined list object is shared across slices (consumers
    must not mutate rows).
    """
    ctx.check_faults()
    combined: list = []
    for rows in per_slice:
        combined.extend(rows)
    copies = max(0, ctx.slice_count - 1)
    ctx.interconnect.record_broadcast(len(combined) * row_width, copies)
    return [combined for _ in range(ctx.slice_count)]


def shuffle(
    per_slice: PerSlice,
    key_of: Callable[[tuple], object],
    ctx: ExecutionContext,
    row_width: int,
) -> PerSlice:
    """Redistribute rows by hash of ``key_of(row)``.

    Rows whose target slice equals their current slice do not move; only
    the bytes that actually cross the interconnect are accounted.
    """
    ctx.check_faults()
    n = ctx.slice_count
    out: PerSlice = [[] for _ in range(n)]
    moved = 0
    for source, rows in enumerate(per_slice):
        for row in rows:
            target = stable_hash(key_of(row)) % n
            out[target].append(row)
            if target != source:
                moved += 1
    ctx.interconnect.record_redistribution(moved * row_width)
    return out


def gather(
    per_slice: PerSlice, ctx: ExecutionContext, row_width: int
) -> list:
    """Collect all rows at the leader node."""
    ctx.check_faults()
    combined: list = []
    for rows in per_slice:
        combined.extend(rows)
    ctx.interconnect.record_gather(len(combined) * row_width)
    return combined


def row_width(output_columns: Sequence) -> int:
    """Nominal bytes per row of an operator's output schema."""
    return max(1, sum(c.sql_type.byte_width for c in output_columns))
