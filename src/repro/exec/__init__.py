"""Query execution: the interpreted (Volcano) and compiled executors.

Both executors run the same distributed physical plans and share one
definition of SQL semantics (:mod:`repro.sql.expressions`); they differ in
*how* per-row work is dispatched. The Volcano executor threads every row
through a chain of Python generators and closure trees — the classic
interpreted iterator model. The compiled executor generates one fused
Python function per pipeline (Neumann-style produce/consume codegen) and
``compile()``s it, paying a fixed per-query overhead for much tighter
per-row execution — exactly the trade-off §2.1 of the paper describes for
Redshift's compilation to machine code.
"""

from repro.exec.context import ExecutionContext, ParallelConfig, QueryStats
from repro.exec.volcano import VolcanoExecutor
from repro.exec.codegen import CompiledExecutor
from repro.exec.parallel import ParallelExecutor

__all__ = [
    "ExecutionContext", "ParallelConfig", "QueryStats",
    "VolcanoExecutor", "CompiledExecutor", "ParallelExecutor",
]
