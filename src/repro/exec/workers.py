"""Per-slice worker pools and the morsel tasks they execute.

The parallel executor (:mod:`repro.exec.parallel`) splits each eligible
scan pipeline into *morsels* — contiguous block ranges of one shard —
and runs them on a pool of workers. On Linux the pool is a fork-based
``ProcessPoolExecutor``: forked children inherit the leader's in-memory
slice stores through :data:`_SLICES` (a module-level registry populated
before the fork), so a task ships only a small :class:`MorselTask` spec
and a result ships only partial-aggregate states or a bounded row list.
Pooled row pipelines pack that list columnar into typed ``array``
vectors (:class:`PackedRows`) before it crosses the pipe: uniform
int/float columns pickle as flat machine bytes instead of N tuples of
boxed values, the same typed-vector representation the block format
uses at rest.
Where fork is unavailable a ``ThreadPoolExecutor`` runs the same tasks
against shared memory.

Staleness: a forked child sees the memory image of fork time. Every
storage mutation bumps :mod:`repro.storage.epoch`, and
:class:`PoolManager` re-forks whenever the epoch moved, so workers never
scan stale blocks. Thread pools share memory and never go stale.

Determinism: workers compute no side effects on shared engine state —
no disk accounting, no fault draws, no interconnect records. Disk reads
are logged per chain block into :attr:`MorselResult.io_log` and replayed
by the leader in morsel order; crash decisions are drawn on the leader
at dispatch time. Result merge order is fixed by morsel index, so the
output is bit-identical to a serial run regardless of OS scheduling.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from array import array
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.engine.transactions import Snapshot
from repro.errors import ExecutionError, WorkerCrashError
from repro.exec.scan import scan_shard_morsel
from repro.exec.spill import MemoryBudget, SpillLog, SpillableAggregateStates
from repro.sql import ast
from repro.sql.expressions import compile_expression
from repro.storage import epoch
from repro.storage.chain import ScanStats


def _no_unresolved(ref: ast.ColumnRef) -> int:
    raise ExecutionError(f"unresolved column reference {ref.to_sql()!r}")


def _compile(expr: ast.Expression):
    return compile_expression(expr, _no_unresolved)


# ---------------------------------------------------------------------------
# Slice registry (fork-inherited)
# ---------------------------------------------------------------------------

#: registry id -> that cluster's slice stores, in slice order. Populated
#: in the leader BEFORE any pool forks so children inherit it; fork-mode
#: workers resolve MorselTask.registry_id against their inherited copy.
_SLICES: dict[int, list] = {}

_registry_ids = itertools.count(1)


def register_slices(slices: list) -> int:
    """Register a cluster's slice stores; returns the registry id.

    Bumps the storage epoch: any already-forked pool predates this
    registration and must not serve tasks that reference it.
    """
    registry_id = next(_registry_ids)
    _SLICES[registry_id] = list(slices)
    epoch.bump()
    return registry_id


def unregister_slices(registry_id: int) -> None:
    _SLICES.pop(registry_id, None)


# ---------------------------------------------------------------------------
# Task / result shapes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PipelineSpec:
    """A fused scan pipeline, self-contained and picklable.

    Expressions travel as AST nodes and are compiled inside the worker
    (compiled closures don't pickle). ``stages`` are applied bottom-up
    above the scan's own pushed-down ``filters``; each is ``("filter",
    condition)`` or ``("project", expressions)``. When ``group_exprs``
    is not None the pipeline ends in partial aggregation and the result
    carries per-group states instead of rows; ``aggregates`` pairs each
    aggregate object with its argument expression (None = COUNT(*)-style).
    ``partition_slices`` > 0 asks for hash-join build-side partitioning:
    rows come back pre-bucketed by ``stable_hash(row[partition_key])``
    into that many destination lists.
    """

    table: str
    column_names: tuple
    zone_predicates: tuple
    filters: tuple = ()
    stages: tuple = ()
    group_exprs: tuple | None = None
    aggregates: tuple = ()
    partition_key: int = 0
    partition_slices: int = 0


@dataclass(frozen=True)
class MorselTask:
    """One schedulable unit: a block range of one slice's shard."""

    registry_id: int
    slice_index: int
    slice_id: str
    block_start: int
    block_end: int
    include_tail: bool
    pipeline: PipelineSpec
    snapshot: Snapshot
    row_ship_limit: int = 0
    #: Leader-drawn fault decision: the worker raises WorkerCrashError.
    crash: bool = False
    #: Query memory budget in bytes (0 = unbounded). Aggregate morsels
    #: over this spill their state map against an op log the leader
    #: replays through the slice's disk accounting.
    memory_limit: int = 0
    #: Pack row-pipeline output into :class:`PackedRows` before shipping.
    #: Set only on tasks submitted to a pool — inline leader runs and
    #: crash/overflow re-runs keep plain lists (nothing crosses a pipe).
    pack_rows: bool = False


@dataclass
class PackedRows:
    """Row-pipeline output packed columnar for the pool boundary.

    Typed ``array`` columns pickle as one flat machine-byte buffer, so
    shipping N uniform int/float rows through the fork pipe costs one
    buffer copy instead of N pickled tuples of boxed values. Columns
    that are not uniformly plain 64-bit int / float stay plain lists.
    Unpacking with :func:`unpack_rows` is bit-identical: ``array('q')``
    and ``array('d')`` round-trip plain Python ints/floats exactly.
    """

    count: int
    columns: list


def pack_rows(rows: list) -> PackedRows:
    """Transpose *rows* into typed columns where value types allow."""
    columns = []
    if rows:
        columns = [_pack_column(col) for col in zip(*rows)]
    return PackedRows(count=len(rows), columns=columns)


def _pack_column(values):
    first = values[0]
    if type(first) is int:
        for v in values:
            if type(v) is not int:
                return list(values)
        try:
            return array("q", values)
        except OverflowError:
            return list(values)
    if type(first) is float:
        for v in values:
            if type(v) is not float:
                return list(values)
        return array("d", values)
    return list(values)


def unpack_rows(packed: PackedRows) -> list:
    """Back to the list-of-tuples shape the leader's assembly expects."""
    if not packed.columns:
        return [()] * packed.count
    return list(zip(*packed.columns))


@dataclass
class MorselResult:
    """What a worker ships back for one morsel."""

    #: Pipeline output rows (row pipelines): a list, a
    #: :class:`PackedRows` when the task asked for packing, or None.
    rows: "list | PackedRows | None" = None
    #: Per-destination-slice row buckets (partition pipelines), or None.
    buckets: list | None = None
    #: Per-group partial aggregate states (aggregate pipelines), or None.
    partial: dict | None = None
    scan: ScanStats = field(default_factory=ScanStats)
    #: Encoded bytes per chain-block read, in read order — replayed
    #: through the leader's disk accounting.
    io_log: list = field(default_factory=list)
    #: Rows the raw scan produced (pre-filter; feeds the scan step stat).
    scanned_rows: int = 0
    #: Rows emitted after each pipeline stage, in stage order.
    stage_rows: tuple = ()
    elapsed_us: int = 0
    #: Row pipeline exceeded row_ship_limit: everything else is unset and
    #: the leader re-executes the morsel locally.
    overflow: bool = False
    #: Spill ("write"|"read"|"delete", nbytes) ops in execution order —
    #: replayed through the leader's disk accounting like io_log — plus
    #: the morsel's spill counters for svl_query_summary/stv_query_spill.
    spill_log: list = field(default_factory=list)
    spilled_bytes: int = 0
    spill_partitions: int = 0
    spill_bytes_read: int = 0


def run_morsel(task: MorselTask, slices: list | None = None) -> MorselResult:
    """Execute one morsel; runs inside a worker (or inline on the leader).

    Pool workers resolve the slice stores from the fork-inherited
    registry; the leader's inline path (parallelism 1, crash re-runs,
    overflow fallbacks) passes its own *slices* directly.
    """
    if task.crash:
        raise WorkerCrashError(task.slice_id, "injected crash")
    started = time.perf_counter()
    pipeline = task.pipeline
    if slices is None:
        slices = _SLICES.get(task.registry_id)
    if slices is None:
        raise ExecutionError(
            f"worker has no slice registry {task.registry_id} "
            "(pool predates cluster registration)"
        )
    store = slices[task.slice_index]
    shard = store.shard(pipeline.table)
    stats = ScanStats()
    io_log: list[int] = []
    rows = list(
        scan_shard_morsel(
            shard,
            list(pipeline.column_names),
            list(pipeline.zone_predicates),
            task.snapshot,
            task.block_start,
            task.block_end,
            task.include_tail,
            stats,
            io_log,
        )
    )
    scanned = len(rows)
    for condition in pipeline.filters:
        predicate = _compile(condition)
        rows = [row for row in rows if predicate(row) is True]
    stage_rows = []
    for kind, payload in pipeline.stages:
        if kind == "filter":
            predicate = _compile(payload)
            rows = [row for row in rows if predicate(row) is True]
        else:  # project
            fns = [_compile(expr) for expr in payload]
            rows = [tuple(fn(row) for fn in fns) for row in rows]
        stage_rows.append(len(rows))

    result = MorselResult(
        scan=stats,
        io_log=io_log,
        scanned_rows=scanned,
        stage_rows=tuple(stage_rows),
    )
    if pipeline.group_exprs is not None:
        group_fns = [_compile(expr) for expr in pipeline.group_exprs]
        arg_fns = [
            _compile(arg) if arg is not None else None
            for _, arg in pipeline.aggregates
        ]
        aggregates = [agg for agg, _ in pipeline.aggregates]
        spill_log = None
        if task.memory_limit:
            # Governed morsel: same spillable map as the serial engines,
            # but IO goes to an op log (no shared-state side effects).
            spill_log = SpillLog()
            states: dict = SpillableAggregateStates(
                MemoryBudget(task.memory_limit),
                spill_log.file_factory(),
                f"{task.slice_id}-b{task.block_start}",
                aggregates,
            )
        else:
            states = {}
        for row in rows:
            key = tuple(fn(row) for fn in group_fns)
            entry = states.get(key)
            if entry is None:
                entry = [agg.create() for agg in aggregates]
                states[key] = entry
            for i, agg in enumerate(aggregates):
                fn = arg_fns[i]
                entry[i] = agg.accumulate(entry[i], 1 if fn is None else fn(row))
        if spill_log is not None:
            result.partial = states.finish()
            result.spill_log = spill_log.ops
            result.spilled_bytes = states.bytes_written
            result.spill_partitions = states.partitions_spilled
            result.spill_bytes_read = states.bytes_read
        else:
            result.partial = states
    elif pipeline.partition_slices:
        from repro.distribution.hashing import stable_hash

        if task.row_ship_limit and len(rows) > task.row_ship_limit:
            result.overflow = True
        else:
            buckets: list[list] = [[] for _ in range(pipeline.partition_slices)]
            key = pipeline.partition_key
            for row in rows:
                buckets[stable_hash(row[key]) % pipeline.partition_slices].append(
                    row
                )
            result.buckets = buckets
    else:
        if task.row_ship_limit and len(rows) > task.row_ship_limit:
            result.overflow = True
        elif task.pack_rows:
            result.rows = pack_rows(rows)
        else:
            result.rows = rows
    result.elapsed_us = int((time.perf_counter() - started) * 1_000_000)
    return result


# ---------------------------------------------------------------------------
# Pools
# ---------------------------------------------------------------------------

def default_mode() -> str:
    """"fork" where the platform supports it, else "thread"."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "thread"


class WorkerPool:
    """A fixed-size pool of morsel workers (fork processes or threads)."""

    def __init__(self, workers: int, mode: str):
        if workers < 1:
            raise ValueError(f"pool needs at least one worker, got {workers}")
        if mode not in ("fork", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.workers = workers
        self.mode = mode
        #: Storage epoch the pool's memory image reflects (fork mode).
        self.epoch = epoch.current()
        if mode == "fork":
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="morsel"
            )

    def submit(self, task: MorselTask) -> Future:
        return self._pool.submit(run_morsel, task)

    def stale(self) -> bool:
        """Fork pools go stale when storage mutated after the fork."""
        return self.mode == "fork" and self.epoch != epoch.current()

    def stale_for(self, tables) -> bool:
        """Staleness restricted to *tables* — the ones a dispatch will
        scan. Mutations of other tables leave the inherited image stale
        only where this dispatch never reads, so the pool stays usable
        (per-table epochs share the global counter's value space, making
        ``table_epoch(t) > fork epoch`` a valid ordering test)."""
        return self.mode == "fork" and any(
            epoch.table_epoch(table) > self.epoch for table in tables
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class PoolManager:
    """Caches one live pool per cluster; re-forks on staleness.

    Owned by the cluster so consecutive queries reuse warm workers; a
    storage mutation between queries just costs one re-fork (cheap on
    Linux: copy-on-write, no state to ship).
    """

    def __init__(self) -> None:
        self._pool: WorkerPool | None = None
        self._lock = threading.Lock()
        #: Pools created over this manager's lifetime (first fork included);
        #: the per-table staleness experiments assert on the delta.
        self.forks = 0
        #: Pools replaced specifically because they went stale.
        self.reforks = 0

    def pool(
        self, workers: int, mode: str, tables: "set[str] | None" = None
    ) -> WorkerPool:
        """The cached pool, re-forked if unusable for this dispatch.

        With *tables* (the tables the dispatch scans) staleness is
        per-table: a fork-mode pool survives mutations of tables it will
        not read. Without it, any storage mutation forces a re-fork.
        """
        with self._lock:
            current = self._pool
            if current is not None and current.workers == workers and (
                current.mode == mode
            ):
                stale = (
                    current.stale_for(tables)
                    if tables is not None
                    else current.stale()
                )
                if not stale:
                    return current
                self.reforks += 1
            if current is not None:
                current.close()
            self._pool = WorkerPool(workers, mode)
            self.forks += 1
            return self._pool

    def invalidate(self) -> None:
        """Drop the cached pool (e.g. after a BrokenProcessPool)."""
        with self._lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def close(self) -> None:
        self.invalidate()
