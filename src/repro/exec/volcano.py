"""The interpreted (Volcano-style) executor.

Rows flow through chains of Python generators; expressions are evaluated
by closure trees from :func:`repro.sql.expressions.compile_expression`.
Pipelines stay lazy between blocking points (joins, aggregation, sorts,
exchanges), mirroring the per-row iterator dispatch of a classical
interpreted executor — the baseline the query-compilation experiment (a2)
measures against.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.errors import ExecutionError
from repro.exec import exchange
from repro.exec.context import ExecutionContext, OperatorStat, SpillEvent
from repro.exec.scan import scan_shard
from repro.exec.spill import (
    SpillableAggregateStates,
    SpillableHashTable,
    SpillableSorter,
)
from repro.plan.physical import (
    JoinDistribution,
    PhysicalAggregate,
    PhysicalDistinct,
    PhysicalFilter,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMergeJoin,
    PhysicalNestedLoopJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalScan,
    PhysicalSetOp,
    PhysicalSingleRow,
    PhysicalSort,
    assign_steps,
)
from repro.sql import ast
from repro.sql.expressions import compile_expression
from repro.storage.chain import ScanStats

PerSlice = list


def _no_unresolved(ref: ast.ColumnRef) -> int:
    raise ExecutionError(f"unresolved column reference {ref.to_sql()!r}")


def _compile(expr: ast.Expression):
    return compile_expression(expr, _no_unresolved)


class VolcanoExecutor:
    """Executes physical plans by interpreted iteration."""

    name = "volcano"

    def __init__(self, ctx: ExecutionContext):
        self._ctx = ctx
        #: id(node) -> preorder step; populated by execute().
        self._steps: dict[int, int] = {}
        self._stats_by_step: dict[int, OperatorStat] = {}
        self._start_times: dict[int, float] = {}
        #: step -> node-local ScanStats, merged into ctx.stats.scan at end.
        self._scan_locals: dict[int, ScanStats] = {}

    # ---- public -----------------------------------------------------------

    def execute(self, plan: PhysicalNode) -> list[tuple]:
        """Run the plan and return the result rows at the leader."""
        self._ctx.check_faults()
        self._steps = assign_steps(plan)
        try:
            per_slice = self._run(plan)
            rows = self._collect_at_leader(plan, per_slice)
        finally:
            self._finish_stats()
        return rows

    def _collect_at_leader(
        self, plan: PhysicalNode, per_slice: PerSlice
    ) -> list[tuple]:
        kind = plan.partitioning.kind
        width = exchange.row_width(plan.output) if plan.output else 1
        if kind == "single":
            return list(per_slice[0])
        if kind == "all":
            rows = list(per_slice[0])
            self._ctx.interconnect.record_gather(len(rows) * width)
            return rows
        materialized = [list(rows) for rows in per_slice]
        return exchange.gather(materialized, self._ctx, width)

    # ---- per-operator instrumentation ------------------------------------------

    def _begin_stat(self, node: PhysicalNode) -> OperatorStat | None:
        """The node's OperatorStat, created (and its clock started) on
        first sight. None when the plan has no step numbering (a node run
        outside execute())."""
        step = self._steps.get(id(node))
        if step is None:
            return None
        stat = self._stats_by_step.get(step)
        if stat is None:
            stat = OperatorStat(
                step=step, operator=node.label(), est_rows=float(node.est_rows)
            )
            self._stats_by_step[step] = stat
            self._start_times[step] = time.perf_counter()
            self._ctx.stats.operators.append(stat)
        return stat

    def _touch(self, stat: OperatorStat, start: float) -> None:
        elapsed = int((time.perf_counter() - start) * 1_000_000)
        if elapsed > stat.elapsed_us:
            stat.elapsed_us = elapsed

    def _counted_iter(self, rows: Iterable[tuple], stat: OperatorStat, start: float):
        count = 0
        try:
            for row in rows:
                count += 1
                yield row
        finally:
            stat.rows += count
            self._touch(stat, start)

    def _count_slices(self, per_slice: PerSlice, stat: OperatorStat) -> PerSlice:
        start = self._start_times[stat.step]
        out: PerSlice = []
        for rows in per_slice:
            if isinstance(rows, list):
                stat.rows += len(rows)
                out.append(rows)
            else:
                out.append(self._counted_iter(rows, stat, start))
        self._touch(stat, start)
        return out

    def _finish_stats(self) -> None:
        """Fold node-local scan counters into the stats and into their
        OperatorStats, then fix the report order to plan-step order."""
        for step, local in self._scan_locals.items():
            stat = self._stats_by_step.get(step)
            if stat is not None:
                stat.blocks_read = local.blocks_read
                stat.blocks_skipped = local.blocks_skipped
                stat.bytes_read = local.bytes_read
                stat.cache_hits = local.cache_hits
                stat.cache_misses = local.cache_misses
                stat.encoded_batches = local.encoded_batches
                stat.decode_bytes_avoided = local.decode_bytes_avoided
            self._ctx.stats.scan.merge(local)
        self._scan_locals.clear()
        self._ctx.stats.operators.sort(key=lambda s: s.step)

    # ---- memory governor / spill ---------------------------------------------

    def _spill_state(self):
        """(budget, manager) when this query runs governed, else None."""
        budget = self._ctx.memory_budget
        manager = self._ctx.spill
        if budget is None or manager is None:
            return None
        return budget, manager

    def _spill_label(self, node: PhysicalNode, slice_index: int) -> str:
        step = self._steps.get(id(node), 0)
        return f"step{step}-s{slice_index}"

    def _agg_states(
        self, node: PhysicalNode, slice_index: int, aggregates, tag: str = ""
    ) -> dict:
        """A fresh per-group state map: plain dict when unbounded, a
        budget-charged :class:`SpillableAggregateStates` when governed.
        Leader-side maps (partial merge) use slice 0's disk — the repo's
        convention for leader work — via ``slice_index=0``."""
        state = self._spill_state()
        if state is None:
            return {}
        budget, manager = state
        disk = self._ctx.slices[slice_index].disk
        label = self._spill_label(node, slice_index) + tag
        return SpillableAggregateStates(
            budget, manager.file_factory(disk), label, aggregates
        )

    def _finish_agg_states(
        self, node: PhysicalNode, slice_index: int, states: dict
    ) -> dict:
        """Resolve a state map to a plain dict in first-seen order,
        folding any spill activity into the operator's stats."""
        if isinstance(states, SpillableAggregateStates):
            finished = states.finish()
            self._note_spill(
                node, states, self._ctx.slices[slice_index].disk.disk_id
            )
            return finished
        return states

    def _note_spill(self, node: PhysicalNode, spilled, disk_id: str) -> None:
        """Fold one structure's spill counters into the operator stat,
        the query totals and the stv_query_spill event list."""
        if spilled is None or not spilled.spilled:
            return
        stats = self._ctx.stats
        stats.spilled_bytes += spilled.bytes_written
        stats.spill_partitions += spilled.partitions_spilled
        step = self._steps.get(id(node), 0)
        stat = self._stats_by_step.get(step)
        if stat is not None:
            stat.spilled_bytes += spilled.bytes_written
            stat.spill_partitions += spilled.partitions_spilled
        stats.spill_events.append(
            SpillEvent(
                step=step,
                operator=node.label(),
                disk_id=disk_id,
                partitions=spilled.partitions_spilled,
                bytes_written=spilled.bytes_written,
                bytes_read=spilled.bytes_read,
            )
        )

    # ---- dispatch ------------------------------------------------------------

    def _run(self, node: PhysicalNode) -> PerSlice:
        stat = self._begin_stat(node)
        per_slice = self._run_node(node)
        if stat is None or isinstance(node, PhysicalScan):
            # Scan output is counted at the raw-scan level (shared with
            # the compiled executor), before the pushed-down filters.
            return per_slice
        return self._count_slices(per_slice, stat)

    def _run_node(self, node: PhysicalNode) -> PerSlice:
        if isinstance(node, PhysicalScan):
            return self._run_scan(node)
        if isinstance(node, PhysicalFilter):
            return self._run_filter(node)
        if isinstance(node, PhysicalProject):
            return self._run_project(node)
        if isinstance(node, PhysicalHashJoin):
            return self._run_hash_join(node)
        if isinstance(node, PhysicalMergeJoin):
            return self._run_merge_join(node)
        if isinstance(node, PhysicalNestedLoopJoin):
            return self._run_nested_loop(node)
        if isinstance(node, PhysicalAggregate):
            return self._run_aggregate(node)
        if isinstance(node, PhysicalDistinct):
            return self._run_distinct(node)
        if isinstance(node, PhysicalSort):
            return self._run_sort(node)
        if isinstance(node, PhysicalLimit):
            return self._run_limit(node)
        if isinstance(node, PhysicalSetOp):
            return self._run_set_op(node)
        if isinstance(node, PhysicalSingleRow):
            return [[()]] + [[] for _ in range(self._ctx.slice_count - 1)]
        raise ExecutionError(f"cannot execute {type(node).__name__}")

    def _run_set_op(self, node: PhysicalSetOp) -> PerSlice:
        left = self._one_copy(
            node.left, self._materialize(node.left, self._run(node.left))
        )
        right = self._one_copy(
            node.right, self._materialize(node.right, self._run(node.right))
        )
        if node.op == "union" and node.all:
            # Stays distributed: concatenate per slice.
            return [l + r for l, r in zip(left, right)]
        width = exchange.row_width(node.output) if node.output else 1
        left_rows = exchange.gather(left, self._ctx, width)
        right_rows = exchange.gather(right, self._ctx, width)
        if node.op == "union":
            seen: set = set()
            out = []
            for row in left_rows + right_rows:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
        elif node.op == "intersect":
            right_set = set(right_rows)
            seen = set()
            out = []
            for row in left_rows:
                if row in right_set and row not in seen:
                    seen.add(row)
                    out.append(row)
        else:  # except
            right_set = set(right_rows)
            seen = set()
            out = []
            for row in left_rows:
                if row not in right_set and row not in seen:
                    seen.add(row)
                    out.append(row)
        return [out] + [[] for _ in range(self._ctx.slice_count - 1)]

    # ---- leaf / pipeline operators ------------------------------------------

    def _scan_slices(self, node: PhysicalScan) -> PerSlice:
        """Per-slice raw scan iterables: zone-map pruning and MVCC
        visibility applied, pushed-down filters NOT applied (the volcano
        path wraps them, the compiled path fuses them). Shared by both
        executors so scan accounting and the system-table branch live in
        one place."""
        stat = self._begin_stat(node)
        system = self._ctx.system_rows.get(node.table.name)
        if system is not None:
            rows = [
                tuple(row[i] for i in node.column_indexes) for row in system
            ]
            if stat is not None:
                stat.rows += len(rows)
                self._touch(stat, self._start_times[stat.step])
            # System rows live at the leader; slice 0 carries all of
            # them, a valid round-robin placement for downstream
            # exchanges, joins and aggregates.
            return [rows] + [[] for _ in range(self._ctx.slice_count - 1)]
        column_names = scan_column_names(node)
        if stat is None:
            local = self._ctx.stats.scan
        else:
            local = ScanStats()
            self._scan_locals[stat.step] = local
        out: PerSlice = []
        for store in self._ctx.slices:
            if not store.has_shard(node.table.name):
                out.append([])
                continue
            shard = store.shard(node.table.name)
            rows: Iterable[tuple] = scan_shard(
                shard,
                column_names,
                node.zone_predicates,
                self._ctx.snapshot,
                local,
                store.disk,
            )
            if stat is not None:
                rows = self._counted_iter(
                    rows, stat, self._start_times[stat.step]
                )
            out.append(rows)
        return out

    def _run_scan(self, node: PhysicalScan) -> PerSlice:
        predicates = [_compile(f) for f in node.filters]
        out: PerSlice = []
        for rows in self._scan_slices(node):
            for predicate in predicates:
                rows = self._filtered(rows, predicate)
            out.append(rows)
        return out

    @staticmethod
    def _filtered(rows: Iterable[tuple], predicate) -> Iterable[tuple]:
        return (row for row in rows if predicate(row) is True)

    def _run_filter(self, node: PhysicalFilter) -> PerSlice:
        child = self._run(node.child)
        predicate = _compile(node.condition)
        return [self._filtered(rows, predicate) for rows in child]

    def _run_project(self, node: PhysicalProject) -> PerSlice:
        child = self._run(node.child)
        exprs = [_compile(e) for e in node.expressions]
        return [
            (tuple(fn(row) for fn in exprs) for row in rows) for rows in child
        ]

    # ---- joins -------------------------------------------------------------------

    def _materialize(
        self, node: PhysicalNode, per_slice: PerSlice
    ) -> PerSlice:
        return [list(rows) for rows in per_slice]

    def _one_copy(self, node: PhysicalNode, per_slice: PerSlice) -> PerSlice:
        """For 'all'-partitioned input: keep one copy (slice 0), so
        row-once consumers (aggregates, shuffles) do not double count."""
        if node.partitioning.kind == "all":
            return [list(per_slice[0])] + [
                [] for _ in range(self._ctx.slice_count - 1)
            ]
        return per_slice

    def _run_hash_join(self, node: PhysicalHashJoin) -> PerSlice:
        left = self._materialize(node.left, self._run(node.left))
        right = self._materialize(node.right, self._run(node.right))
        left_width = exchange.row_width(node.left.output)
        right_width = exchange.row_width(node.right.output)
        left_keys = [l for l, _ in node.keys]
        right_keys = [r for _, r in node.keys]

        strategy = node.strategy
        if strategy is JoinDistribution.DS_DIST_NONE:
            both_all = (
                node.left.partitioning.kind == "all"
                and node.right.partitioning.kind == "all"
            )
            if both_all:
                left = self._one_copy(node.left, left)
                # right stays replicated; only slice 0 will probe.
        elif strategy is JoinDistribution.DS_BCAST_INNER:
            if node.build_right:
                right = exchange.broadcast(
                    self._one_copy(node.right, right), self._ctx, right_width
                )
                left = self._one_copy(node.left, left)
            else:
                left = exchange.broadcast(
                    self._one_copy(node.left, left), self._ctx, left_width
                )
                right = self._one_copy(node.right, right)
        else:
            redistribute_left, redistribute_right = redistributed_sides(node)
            lk, rk = node.keys[0]
            if redistribute_left:
                left = self._shuffle_side(node.left, left, lk, left_width)
            if redistribute_right:
                right = self._shuffle_side(node.right, right, rk, right_width)

        residual = _compile(node.residual) if node.residual is not None else None
        left_null = (None,) * len(node.left.output)
        right_null = (None,) * len(node.right.output)

        out: PerSlice = []
        for s in range(self._ctx.slice_count):
            out.append(
                self._join_slice(
                    node,
                    left[s],
                    right[s],
                    left_keys,
                    right_keys,
                    residual,
                    left_null,
                    right_null,
                    slice_index=s,
                )
            )
        return out

    def _shuffle_side(
        self, side: PhysicalNode, per_slice: PerSlice, key_index: int, width: int
    ) -> PerSlice:
        """Hash-redistribute one join input. The parallel executor
        overrides this to consume worker-side pre-partitioned buckets."""
        return exchange.shuffle(
            self._one_copy(side, per_slice),
            lambda row: row[key_index],
            self._ctx,
            width,
        )

    def _join_slice(
        self,
        node: PhysicalHashJoin,
        left_rows: list,
        right_rows: list,
        left_keys: list[int],
        right_keys: list[int],
        residual,
        left_null: tuple,
        right_null: tuple,
        slice_index: int = 0,
    ) -> list:
        kind = node.kind
        build_right = node.build_right
        build_rows = right_rows if build_right else left_rows
        probe_rows = left_rows if build_right else right_rows
        build_keys = right_keys if build_right else left_keys
        probe_keys = left_keys if build_right else right_keys

        # FULL joins emit unmatched build rows in table order, which a
        # grace-hash repartition would reshuffle — they stay in memory
        # (both serial engines special-case FULL already).
        state = self._spill_state() if kind is not ast.JoinKind.FULL else None
        spill_table = None
        if state is not None:
            budget, manager = state
            disk = self._ctx.slices[slice_index].disk
            spill_table = SpillableHashTable(
                budget,
                manager.file_factory(disk),
                self._spill_label(node, slice_index),
            )
            for row in build_rows:
                key = tuple(row[i] for i in build_keys)
                if any(v is None for v in key):
                    continue  # NULL never equals anything
                spill_table.insert(key, row)
            table = spill_table.build()
            self._note_spill(node, spill_table, disk.disk_id)
        else:
            table = {}
            for row in build_rows:
                key = tuple(row[i] for i in build_keys)
                if any(v is None for v in key):
                    continue  # NULL never equals anything
                table.setdefault(key, []).append(row)

        preserve_probe = (
            (kind is ast.JoinKind.LEFT and build_right)
            or (kind is ast.JoinKind.RIGHT and not build_right)
            or kind is ast.JoinKind.FULL
        )
        track_build = kind is ast.JoinKind.FULL
        matched_build: set[int] = set()

        results: list = []
        for probe in probe_rows:
            key = tuple(probe[i] for i in probe_keys)
            matches = [] if any(v is None for v in key) else table.get(key, [])
            emitted = False
            for build in matches:
                combined = probe + build if build_right else build + probe
                if residual is not None and residual(combined) is not True:
                    continue
                results.append(combined)
                emitted = True
                if track_build:
                    matched_build.add(id(build))
            if not emitted and preserve_probe:
                if build_right:
                    results.append(probe + right_null)
                else:
                    results.append(left_null + probe)
        if track_build:
            for rows in table.values():
                for build in rows:
                    if id(build) not in matched_build:
                        if build_right:
                            results.append(left_null + build)
                        else:
                            results.append(build + right_null)
        if spill_table is not None:
            spill_table.done()
        return results

    def _run_merge_join(self, node: PhysicalMergeJoin) -> PerSlice:
        """Sort-merge join. The operator selection only emits this for
        co-located (DS_DIST_NONE) inner joins on a single key, so no data
        movement happens here; each slice sorts its two inputs on the key
        (near-free when they arrive in sort-key order) and merges."""
        if node.kind is not ast.JoinKind.INNER:
            raise ExecutionError("merge join supports INNER joins only")
        left = self._materialize(node.left, self._run(node.left))
        right = self._materialize(node.right, self._run(node.right))
        if (
            node.left.partitioning.kind == "all"
            and node.right.partitioning.kind == "all"
        ):
            left = self._one_copy(node.left, left)
        residual = _compile(node.residual) if node.residual is not None else None
        left_key, right_key = node.keys[0]
        out: PerSlice = []
        for s in range(self._ctx.slice_count):
            out.append(
                self._merge_join_slice(
                    left[s], right[s], left_key, right_key, residual
                )
            )
        return out

    @staticmethod
    def _merge_join_slice(
        left_rows: list,
        right_rows: list,
        left_key: int,
        right_key: int,
        residual,
    ) -> list:
        lrows = sorted(
            (row for row in left_rows if row[left_key] is not None),
            key=lambda row: row[left_key],
        )
        rrows = sorted(
            (row for row in right_rows if row[right_key] is not None),
            key=lambda row: row[right_key],
        )
        results: list = []
        i = j = 0
        n_left, n_right = len(lrows), len(rrows)
        while i < n_left and j < n_right:
            lval = lrows[i][left_key]
            rval = rrows[j][right_key]
            if lval < rval:
                i += 1
            elif lval > rval:
                j += 1
            else:
                j_end = j
                while j_end < n_right and rrows[j_end][right_key] == lval:
                    j_end += 1
                while i < n_left and lrows[i][left_key] == lval:
                    left_row = lrows[i]
                    for jj in range(j, j_end):
                        combined = left_row + rrows[jj]
                        if residual is None or residual(combined) is True:
                            results.append(combined)
                    i += 1
                j = j_end
        return results

    def _run_nested_loop(self, node: PhysicalNestedLoopJoin) -> PerSlice:
        left = self._materialize(node.left, self._run(node.left))
        right = self._materialize(node.right, self._run(node.right))
        left_width = exchange.row_width(node.left.output)
        right_width = exchange.row_width(node.right.output)
        broadcast_left = node.kind is ast.JoinKind.RIGHT
        if broadcast_left:
            left = exchange.broadcast(
                self._one_copy(node.left, left), self._ctx, left_width
            )
            right = self._one_copy(node.right, right)
        else:
            right = exchange.broadcast(
                self._one_copy(node.right, right), self._ctx, right_width
            )
            left = self._one_copy(node.left, left)
        residual = _compile(node.residual) if node.residual is not None else None
        left_null = (None,) * len(node.left.output)
        right_null = (None,) * len(node.right.output)
        out: PerSlice = []
        for s in range(self._ctx.slice_count):
            rows: list = []
            if broadcast_left:
                for r_row in right[s]:
                    emitted = False
                    for l_row in left[s]:
                        combined = l_row + r_row
                        if residual is not None and residual(combined) is not True:
                            continue
                        rows.append(combined)
                        emitted = True
                    if not emitted and node.kind is ast.JoinKind.RIGHT:
                        rows.append(left_null + r_row)
            else:
                for l_row in left[s]:
                    emitted = False
                    for r_row in right[s]:
                        combined = l_row + r_row
                        if residual is not None and residual(combined) is not True:
                            continue
                        rows.append(combined)
                        emitted = True
                    if not emitted and node.kind is ast.JoinKind.LEFT:
                        rows.append(l_row + right_null)
            out.append(rows)
        return out

    # ---- aggregation / distinct -----------------------------------------------

    def _run_aggregate(self, node: PhysicalAggregate) -> PerSlice:
        child = self._one_copy(
            node.child, self._materialize(node.child, self._run(node.child))
        )
        group_fns = [_compile(e) for e in node.group_exprs]
        arg_fns = [
            _compile(call.argument) if call.argument is not None else None
            for call in node.aggregates
        ]
        aggregates = [call.aggregate for call in node.aggregates]

        partials: list[dict] = []
        for s, rows in enumerate(child):
            states = self._agg_states(node, s, aggregates)
            self._accumulate_rows(states, rows, group_fns, arg_fns, aggregates)
            partials.append(self._finish_agg_states(node, s, states))
        return self._merge_partials(node, partials, aggregates)

    @staticmethod
    def _accumulate_rows(
        states: dict, rows, group_fns, arg_fns, aggregates
    ) -> None:
        """Fold row tuples into per-group partial states (shared with the
        vectorized executor's row-input fallback)."""
        for row in rows:
            key = tuple(fn(row) for fn in group_fns)
            entry = states.get(key)
            if entry is None:
                entry = [agg.create() for agg in aggregates]
                states[key] = entry
            for i, agg in enumerate(aggregates):
                fn = arg_fns[i]
                entry[i] = agg.accumulate(entry[i], 1 if fn is None else fn(row))

    def _merge_partials(
        self, node: PhysicalAggregate, partials: list[dict], aggregates
    ) -> PerSlice:
        """Local finalize or leader merge of per-slice partial states —
        identical across executors so network accounting matches."""
        global_agg = not node.group_exprs
        width = exchange.row_width(node.output) if node.output else 8

        if node.local_only:
            out: PerSlice = []
            for states in partials:
                out.append(
                    [
                        key
                        + tuple(
                            agg.finalize(state)
                            for agg, state in zip(aggregates, entry)
                        )
                        for key, entry in states.items()
                    ]
                )
            return out

        merged = self._agg_states(node, 0, aggregates, tag="-merge")
        transferred = 0
        for states in partials:
            transferred += len(states)
            for key, entry in states.items():
                target = merged.get(key)
                if target is None:
                    merged[key] = entry
                else:
                    for i, agg in enumerate(aggregates):
                        target[i] = agg.merge(target[i], entry[i])
        self._ctx.interconnect.record_gather(transferred * width)
        merged = self._finish_agg_states(node, 0, merged)

        if global_agg and not merged:
            merged[()] = [agg.create() for agg in aggregates]

        leader_rows = [
            key
            + tuple(agg.finalize(state) for agg, state in zip(aggregates, entry))
            for key, entry in merged.items()
        ]
        return [leader_rows] + [[] for _ in range(self._ctx.slice_count - 1)]

    def _run_distinct(self, node: PhysicalDistinct) -> PerSlice:
        child = self._one_copy(
            node.child, self._materialize(node.child, self._run(node.child))
        )
        width = exchange.row_width(node.output)
        seen: set = set()
        ordered: list = []
        transferred = 0
        for rows in child:
            slice_seen: set = set()
            for row in rows:
                if row not in slice_seen:
                    slice_seen.add(row)
            transferred += len(slice_seen)
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    ordered.append(row)
        self._ctx.interconnect.record_gather(transferred * width)
        return [ordered] + [[] for _ in range(self._ctx.slice_count - 1)]

    # ---- leader operators ----------------------------------------------------------

    def _leader_rows(self, node: PhysicalNode, per_slice: PerSlice) -> list:
        kind = node.partitioning.kind
        if kind == "single":
            return list(per_slice[0])
        width = exchange.row_width(node.output) if node.output else 1
        if kind == "all":
            rows = list(per_slice[0])
            self._ctx.interconnect.record_gather(len(rows) * width)
            return rows
        return exchange.gather(
            [list(rows) for rows in per_slice], self._ctx, width
        )

    def _run_sort(self, node: PhysicalSort) -> PerSlice:
        rows = self._leader_rows(node.child, self._run(node.child))
        state = self._spill_state()
        if state is None:
            rows = sort_rows(rows, node.keys)
        else:
            budget, manager = state
            disk = self._ctx.slices[0].disk
            sorter = SpillableSorter(
                budget,
                manager.file_factory(disk),
                self._spill_label(node, 0),
            )
            rows = sorter.sort(
                rows,
                lambda chunk: sort_rows(chunk, node.keys),
                composite_sort_key(node.keys),
            )
            self._note_spill(node, sorter, disk.disk_id)
        return [rows] + [[] for _ in range(self._ctx.slice_count - 1)]

    def _run_limit(self, node: PhysicalLimit) -> PerSlice:
        rows = self._leader_rows(node.child, self._run(node.child))
        start = node.offset or 0
        end = start + node.limit if node.limit is not None else None
        return [rows[start:end]] + [[] for _ in range(self._ctx.slice_count - 1)]


def redistributed_sides(node: PhysicalHashJoin) -> tuple[bool, bool]:
    """Which inputs of a hash join get hash-shuffled under its strategy.

    (False, False) for co-located and broadcast joins. Shared with the
    parallel executor, which must know before running a side whether its
    rows will be redistributed (to push the bucketing into workers).
    """
    strategy = node.strategy
    if strategy in (
        JoinDistribution.DS_DIST_NONE,
        JoinDistribution.DS_BCAST_INNER,
    ):
        return False, False
    redistribute_left = strategy is JoinDistribution.DS_DIST_BOTH or (
        strategy is JoinDistribution.DS_DIST_INNER and not node.build_right
    ) or (
        strategy is JoinDistribution.DS_DIST_OUTER and node.build_right
    )
    redistribute_right = strategy is JoinDistribution.DS_DIST_BOTH or (
        strategy is JoinDistribution.DS_DIST_INNER and node.build_right
    ) or (
        strategy is JoinDistribution.DS_DIST_OUTER and not node.build_right
    )
    return redistribute_left, redistribute_right


def scan_column_names(node: PhysicalScan) -> list:
    """Chain names per scan-output position, ``None`` for dead columns."""
    names = []
    for position, table_index in enumerate(node.column_indexes):
        if node.live_columns is not None and position not in node.live_columns:
            names.append(None)
        else:
            names.append(node.table.columns[table_index].name)
    return names


def sort_rows(rows: list, keys: list[tuple[ast.Expression, bool]]) -> list:
    """Sort rows by the bound key expressions (ASC = NULLS LAST, matching
    PostgreSQL defaults). Shared by both executors."""
    out = list(rows)
    for expr, descending in reversed(keys):
        fn = _compile(expr)
        if descending:
            out.sort(key=lambda row: _DescKey(fn(row)))
        else:
            out.sort(key=lambda row: _AscKey(fn(row)))
    return out


def composite_sort_key(keys: list[tuple[ast.Expression, bool]]):
    """One lexicographic key function equivalent to the multi-pass
    stable sorts of :func:`sort_rows` — what the external-merge sorter
    hands ``heapq.merge`` so spilled runs interleave bit-identically."""
    compiled = [(_compile(expr), descending) for expr, descending in keys]

    def key_fn(row):
        return tuple(
            _DescKey(fn(row)) if descending else _AscKey(fn(row))
            for fn, descending in compiled
        )

    return key_fn


class _AscKey:
    """Ascending sort key: NULLs last."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_AscKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        # Tuple comparison (the composite merge key) probes == before <.
        # None == None is True here by design: NULLs tie with NULLs.
        return isinstance(other, _AscKey) and self.value == other.value


class _DescKey:
    """Descending sort key: NULLs first."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_DescKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescKey) and self.value == other.value
