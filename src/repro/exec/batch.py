"""Column-vector batches and the vector kernels that run over them.

A :class:`ColumnBatch` is the unit of data flow in the vectorized
executor: one Python list per output column (``None`` for dead columns,
late-materialized only if something actually consumes them) plus a row
count. Batches are immutable by convention — columns may alias decoded
block vectors served by the shared :class:`BlockDecodeCache`, so no
consumer ever mutates a column in place.

Kernels are built **once per operator** from a bound expression and then
applied to every batch:

- :func:`make_mask_kernel` produces selection masks (``expr IS TRUE``
  per row) with comprehension fast paths for the comparison shapes the
  compiled executor also inlines (``col <op> literal``, ``col <op> col``,
  AND/OR of masks, BETWEEN, IS NULL), falling back to the interpreted
  closure over transposed rows otherwise.
- :func:`make_value_kernel` produces output vectors for projections,
  group keys and aggregate arguments, with the same inlining rules.

The AND/OR fast paths are sound under SQL's three-valued logic because a
mask encodes ``IS TRUE``: ``(a AND b) IS TRUE`` iff both are TRUE, and
``(a OR b) IS TRUE`` iff either is. ``NOT`` has no such identity (NOT of
UNKNOWN is UNKNOWN, not TRUE) and always takes the fallback.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable

from repro.errors import ExecutionError
from repro.exec.encoded import EncodedColumn
from repro.sql import ast
from repro.sql.expressions import compile_expression, literal_value

#: SQL comparison -> the Python spelling used in generated comprehensions.
_PY_OPS = {
    "=": "==",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
}

_COMPARISONS = frozenset(["=", "<>", "<", "<=", ">", ">="])

#: ``lit <op> col`` rewritten as ``col <flipped-op> lit`` so encoded
#: columns see the literal on the right.
_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _encoded_compare(index: int, op: str, lit, fallback):
    """Wrap a decoded comparison kernel with the dictionary/RLE/MOSTLY
    pushdown: when the column is still encoded and the codec can answer,
    the mask never touches decoded values."""

    def kernel(batch: ColumnBatch) -> list:
        col = batch.columns[index]
        if type(col) is EncodedColumn:
            mask = col.compare_mask(op, lit)
            if mask is not None:
                return mask
        return fallback(batch)

    return kernel


class ColumnBatch:
    """One block's worth of rows as per-column vectors.

    ``columns[i]`` is the value list of output column *i*, or ``None``
    for a dead (never-read) column; ``count`` is the row count shared by
    every column. Dead columns materialize to all-NULL vectors only on
    first access.
    """

    __slots__ = ("columns", "count", "_rows")

    def __init__(self, columns: list, count: int):
        self.columns = columns
        self.count = count
        self._rows: list | None = None

    @classmethod
    def from_rows(cls, rows: list, width: int) -> "ColumnBatch":
        """Transpose row tuples into a batch (test/fallback helper)."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))

    def column(self, index: int) -> list:
        """The value vector of one column, materializing dead columns and
        decoding still-encoded ones (the universal fallback boundary)."""
        values = self.columns[index]
        if values is None:
            values = [None] * self.count
            self.columns[index] = values
        elif type(values) is EncodedColumn:
            values = values.materialize()
            self.columns[index] = values
        return values

    def rows(self) -> list:
        """The batch as row tuples (memoized; the late-materialization
        boundary for operators that need full rows)."""
        if self._rows is None:
            if not self.columns:
                self._rows = [()] * self.count
            else:
                self._rows = list(
                    zip(*(self.column(i) for i in range(len(self.columns))))
                )
        return self._rows

    def take(self, selection: list) -> "ColumnBatch":
        """A new batch holding the rows at *selection* (in order); dead
        columns stay dead and encoded columns late-materialize only the
        selected positions."""
        columns: list = []
        for col in self.columns:
            if col is None:
                columns.append(None)
            elif type(col) is EncodedColumn:
                columns.append(col.gather(selection))
            else:
                columns.append([col[i] for i in selection])
        return ColumnBatch(columns, len(selection))


def _no_unresolved(ref: ast.ColumnRef) -> int:
    raise ExecutionError(f"unresolved column reference {ref.to_sql()!r}")


def _inlinable(expr: ast.BinaryOp) -> bool:
    # Deferred import: codegen pulls in the volcano executor, which
    # imports the scan module that consumes batches.
    from repro.exec.codegen import _inlinable as inlinable

    return inlinable(expr)


def _comparable_literal(expr: ast.Expression) -> bool:
    return isinstance(expr, ast.Literal) and literal_value(expr) is not None


#: Kernel sources with the same text always compile to the same code
#: object, and everything run-specific (the literal operands) arrives
#: through the exec environment — so the ``compile()`` step is cached
#: process-wide by source text (the kernel-level analogue of the
#: compiled executor's segment cache; feeds svl_compile_cache).
_KERNEL_CODE_CAPACITY = 512

#: source text -> [code object, hit count]
_kernel_code: "OrderedDict[str, list]" = OrderedDict()
_kernel_lock = threading.Lock()


class _KernelCacheStats:
    """Process-wide kernel compile-cache counters."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


KERNEL_CACHE_STATS = _KernelCacheStats()


def _compile_kernel(source: str):
    with _kernel_lock:
        entry = _kernel_code.get(source)
        if entry is not None:
            _kernel_code.move_to_end(source)
            entry[1] += 1
            KERNEL_CACHE_STATS.hits += 1
            return entry[0]
        KERNEL_CACHE_STATS.misses += 1
    code = compile(source, "<batch-kernel>", "exec")
    with _kernel_lock:
        _kernel_code[source] = [code, 0]
        if len(_kernel_code) > _KERNEL_CODE_CAPACITY:
            _kernel_code.popitem(last=False)
            KERNEL_CACHE_STATS.evictions += 1
    return code


def kernel_cache_rows() -> list[tuple]:
    """(signature, hits) per cached kernel source (svl_compile_cache)."""
    with _kernel_lock:
        return [
            (hashlib.sha256(source.encode()).hexdigest(), entry[1])
            for source, entry in _kernel_code.items()
        ]


def clear_kernel_cache() -> None:
    """Drop cached kernel code objects (counters keep accumulating)."""
    with _kernel_lock:
        _kernel_code.clear()


def _build(source: str, env: dict) -> Callable:
    """Compile one kernel function from generated source.

    The expensive ``compile()`` is served from the process-wide code
    cache; the ``exec`` that binds the (per-call) literal environment is
    a single cheap ``def``.
    """
    namespace = dict(env)
    exec(_compile_kernel(source), namespace)  # noqa: S102 - as codegen.py
    return namespace["_kernel"]


# ---------------------------------------------------------------------------
# Mask kernels (filter position: SQL TRUE -> keep)
# ---------------------------------------------------------------------------

def make_mask_kernel(expr: ast.Expression) -> Callable[[ColumnBatch], list]:
    """A function mapping a batch to a list of plain bools (``expr IS
    TRUE`` per row)."""
    kernel = _try_mask_fast_path(expr)
    if kernel is not None:
        return kernel
    fn = compile_expression(expr, _no_unresolved)

    def fallback(batch: ColumnBatch) -> list:
        return [fn(row) is True for row in batch.rows()]

    return fallback


def _try_mask_fast_path(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op == "AND":
            left = make_mask_kernel(expr.left)
            right = make_mask_kernel(expr.right)
            return lambda batch: [
                a and b for a, b in zip(left(batch), right(batch))
            ]
        if op == "OR":
            left = make_mask_kernel(expr.left)
            right = make_mask_kernel(expr.right)
            return lambda batch: [
                a or b for a, b in zip(left(batch), right(batch))
            ]
        if op in _COMPARISONS and _inlinable(expr):
            return _comparison_mask(expr)
        return None
    if isinstance(expr, ast.IsNullExpr) and isinstance(
        expr.operand, ast.BoundRef
    ):
        index = expr.operand.index
        negated = expr.negated

        def null_kernel(batch: ColumnBatch) -> list:
            col = batch.columns[index]
            if type(col) is EncodedColumn:
                return col.is_null_mask(negated)
            values = batch.column(index)
            if negated:
                return [v is not None for v in values]
            return [v is None for v in values]

        return null_kernel
    if isinstance(expr, ast.BetweenExpr) and not expr.negated:
        return _between_mask(expr)
    return None


def _comparison_mask(expr: ast.BinaryOp):
    pyop = _PY_OPS[expr.op]
    left, right = expr.left, expr.right
    if isinstance(left, ast.BoundRef) and _comparable_literal(right):
        source = (
            "def _kernel(batch):\n"
            f"    lit = _lit\n"
            f"    return [v is not None and v {pyop} lit"
            f" for v in batch.column({left.index})]\n"
        )
        lit = literal_value(right)
        return _encoded_compare(
            left.index, expr.op, lit, _build(source, {"_lit": lit})
        )
    if isinstance(right, ast.BoundRef) and _comparable_literal(left):
        source = (
            "def _kernel(batch):\n"
            f"    lit = _lit\n"
            f"    return [v is not None and lit {pyop} v"
            f" for v in batch.column({right.index})]\n"
        )
        lit = literal_value(left)
        return _encoded_compare(
            right.index, _FLIPPED[expr.op], lit, _build(source, {"_lit": lit})
        )
    if isinstance(left, ast.BoundRef) and isinstance(right, ast.BoundRef):
        source = (
            "def _kernel(batch):\n"
            f"    return [a is not None and b is not None and a {pyop} b"
            f" for a, b in zip(batch.column({left.index}),"
            f" batch.column({right.index}))]\n"
        )
        return _build(source, {})
    return None


def _between_mask(expr: ast.BetweenExpr):
    operand = expr.operand
    if not isinstance(operand, ast.BoundRef):
        return None
    if not (_comparable_literal(expr.low) and _comparable_literal(expr.high)):
        return None
    # Reuse the codegen type rules: BETWEEN is two inlined comparisons.
    low_cmp = ast.BinaryOp(">=", operand, expr.low)
    high_cmp = ast.BinaryOp("<=", operand, expr.high)
    if not (_inlinable(low_cmp) and _inlinable(high_cmp)):
        return None
    source = (
        "def _kernel(batch):\n"
        "    lo, hi = _lo, _hi\n"
        f"    return [v is not None and lo <= v <= hi"
        f" for v in batch.column({operand.index})]\n"
    )
    low = literal_value(expr.low)
    high = literal_value(expr.high)
    decoded = _build(source, {"_lo": low, "_hi": high})
    index = operand.index

    def between_kernel(batch: ColumnBatch) -> list:
        col = batch.columns[index]
        if type(col) is EncodedColumn:
            low_mask = col.compare_mask(">=", low)
            if low_mask is not None:
                high_mask = col.compare_mask("<=", high)
                if high_mask is not None:
                    return [a and b for a, b in zip(low_mask, high_mask)]
        return decoded(batch)

    return between_kernel


# ---------------------------------------------------------------------------
# Value kernels (projection / group key / aggregate argument position)
# ---------------------------------------------------------------------------

def make_value_kernel(expr: ast.Expression) -> Callable[[ColumnBatch], list]:
    """A function mapping a batch to the expression's output vector."""
    if isinstance(expr, ast.BoundRef):
        index = expr.index

        def ref_kernel(batch: ColumnBatch):
            # A still-encoded column flows through untouched so projections
            # late-materialize and RLE aggregates can fold runs; generic
            # consumers treat it as a sequence (which decodes on demand).
            col = batch.columns[index]
            if type(col) is EncodedColumn:
                return col
            return batch.column(index)

        return ref_kernel
    if isinstance(expr, ast.Literal):
        value = literal_value(expr)
        return lambda batch: [value] * batch.count
    if isinstance(expr, ast.BinaryOp) and expr.op in _PY_OPS and _inlinable(expr):
        kernel = _binary_value(expr)
        if kernel is not None:
            return kernel
    fn = compile_expression(expr, _no_unresolved)

    def fallback(batch: ColumnBatch) -> list:
        return [fn(row) for row in batch.rows()]

    return fallback


def _binary_value(expr: ast.BinaryOp):
    pyop = _PY_OPS[expr.op]
    left, right = expr.left, expr.right
    if isinstance(left, ast.BoundRef) and _comparable_literal(right):
        source = (
            "def _kernel(batch):\n"
            "    lit = _lit\n"
            f"    return [None if v is None else v {pyop} lit"
            f" for v in batch.column({left.index})]\n"
        )
        return _build(source, {"_lit": literal_value(right)})
    if isinstance(right, ast.BoundRef) and _comparable_literal(left):
        source = (
            "def _kernel(batch):\n"
            "    lit = _lit\n"
            f"    return [None if v is None else lit {pyop} v"
            f" for v in batch.column({right.index})]\n"
        )
        return _build(source, {"_lit": literal_value(left)})
    if isinstance(left, ast.BoundRef) and isinstance(right, ast.BoundRef):
        source = (
            "def _kernel(batch):\n"
            f"    return [None if a is None or b is None else a {pyop} b"
            f" for a, b in zip(batch.column({left.index}),"
            f" batch.column({right.index}))]\n"
        )
        return _build(source, {})
    return None
