"""The slice-parallel executor.

``SET executor = parallel`` runs eligible scan pipelines — scan →
zone-map skip → filter → project, optionally topped by partial
aggregation or hash-join build-side partitioning — on per-slice workers
(:mod:`repro.exec.workers`), the paper's "every slice of every compute
node executes the same compiled segment" data-plane claim. Work is
scheduled as *morsels* (contiguous block ranges of one shard) so a
skewed slice is drained by many workers instead of strangling one.

Everything not pushed down — joins, sorts, exchanges, distinct, limits,
system-table scans — inherits the interpreted paths from
:class:`VolcanoExecutor`, so the parallel engine is a strict superset of
the serial one.

Determinism rules (the merge must be bit-identical to a serial run for
integer results, and reproducible run-to-run always):

* Morsels are merged in morsel order = (slice, ascending block range) =
  exactly the serial scan order, so row order and group-key first-seen
  order match the serial engines.
* Workers never touch shared engine state. Disk-IO byte counts come
  back in a log and are replayed through the leader's disks in morsel
  order (identical accounting and media-fault sequence to serial);
  injected worker-crash decisions are drawn on the leader at dispatch.
* Partial aggregates merge per slice in morsel order first, then
  through the same ``_merge_partials`` as every other executor, so
  interconnect accounting is identical. (Floating-point aggregates may
  differ from serial below ~1e-9 because partial sums re-associate.)

Failure handling: a morsel whose worker dies (injected WORKER_CRASH
fault or a broken process pool) is re-executed serially on the leader
and the recovery is logged; a row-pipeline morsel whose output exceeds
the configured ship limit falls back to leader execution the same way.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

from repro.exec.context import SliceExec
from repro.exec.scan import shard_block_count
from repro.exec.volcano import (
    PerSlice,
    VolcanoExecutor,
    redistributed_sides,
    scan_column_names,
)
from repro.exec.workers import (
    MorselResult,
    MorselTask,
    PackedRows,
    PipelineSpec,
    run_morsel,
    unpack_rows,
)
from repro.errors import WorkerCrashError
from repro.faults.plan import FaultKind
from repro.plan.physical import (
    PhysicalAggregate,
    PhysicalFilter,
    PhysicalHashJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalScan,
)
from repro.storage.chain import ScanStats

#: Node shapes a worker pipeline may contain.
_PIPELINE_NODES = (PhysicalScan, PhysicalFilter, PhysicalProject)


class _WorkerSpill:
    """Adapts one morsel's spill counters to _note_spill's interface."""

    def __init__(self, result: MorselResult):
        self.spilled = result.spilled_bytes > 0
        self.bytes_written = result.spilled_bytes
        self.partitions_spilled = result.spill_partitions
        self.bytes_read = result.spill_bytes_read


class ParallelExecutor(VolcanoExecutor):
    """Slice-parallel morsel execution with a leader-side ordered merge."""

    name = "parallel"

    def __init__(self, ctx):
        super().__init__(ctx)
        self._cfg = ctx.parallel
        #: id(join side) -> partition key index, for sides whose rows the
        #: enclosing hash join will redistribute (set in _run_hash_join).
        self._pending_partition: dict[int, int] = {}
        #: id(join side) -> per-source-slice destination buckets produced
        #: by a partition pipeline, consumed by _shuffle_side.
        self._prebucketed: dict[int, list] = {}
        #: slice_id -> per-slice worker accounting (stv_slice_exec).
        self._slice_exec: dict[str, SliceExec] = {}

    # ---- configuration -----------------------------------------------------

    def _effective(self) -> tuple[int, str]:
        """(workers, mode) actually used for this query's dispatches.

        Degree 1 runs morsels inline on the leader ("serial" mode): the
        full morsel machinery with deterministic single-threaded timing —
        what the parity suite pins the pooled modes against. Missing pool
        plumbing (an executor built on a bare context) degrades the same
        way instead of failing.
        """
        cfg = self._cfg
        if cfg is None:
            return 1, "serial"
        degree = max(1, cfg.degree)
        if degree == 1 or cfg.mode == "serial":
            return degree, "serial"
        if cfg.pool_manager is None or not cfg.registry_id:
            return degree, "serial"
        return degree, cfg.mode

    # ---- dispatch hooks ----------------------------------------------------

    def _run_node(self, node: PhysicalNode) -> PerSlice:
        if isinstance(node, _PIPELINE_NODES) and node.parallel_eligible:
            result = self._run_pipeline(node)
            if result is not None:
                return result
        return super()._run_node(node)

    def _run_aggregate(self, node: PhysicalAggregate) -> PerSlice:
        child = node.child
        if isinstance(child, _PIPELINE_NODES) and child.parallel_eligible:
            partials = self._run_pipeline(child, aggregate=node)
            if partials is not None:
                aggregates = [call.aggregate for call in node.aggregates]
                return self._merge_partials(node, partials, aggregates)
        return super()._run_aggregate(node)

    def _run_hash_join(self, node: PhysicalHashJoin) -> PerSlice:
        """Mark to-be-shuffled eligible sides so their pipelines partition
        rows by join key inside the workers (build-side partitioning)."""
        shuffled_left, shuffled_right = redistributed_sides(node)
        marked: list[int] = []
        if node.keys:
            lk, rk = node.keys[0]
            for side, shuffled, key in (
                (node.left, shuffled_left, lk),
                (node.right, shuffled_right, rk),
            ):
                if (
                    shuffled
                    and isinstance(side, _PIPELINE_NODES)
                    and side.parallel_eligible
                    and side.partitioning.kind != "all"
                ):
                    self._pending_partition[id(side)] = key
                    marked.append(id(side))
        try:
            return super()._run_hash_join(node)
        finally:
            for key_id in marked:
                self._pending_partition.pop(key_id, None)
                self._prebucketed.pop(key_id, None)

    def _shuffle_side(
        self, side: PhysicalNode, per_slice: PerSlice, key_index: int, width: int
    ) -> PerSlice:
        buckets = self._prebucketed.pop(id(side), None)
        if buckets is None:
            return super()._shuffle_side(side, per_slice, key_index, width)
        # Assemble worker-partitioned buckets exactly as exchange.shuffle
        # would: destination lists are source-major, and only rows whose
        # destination differs from their source cross the interconnect.
        self._ctx.check_faults()
        n = self._ctx.slice_count
        out: PerSlice = [[] for _ in range(n)]
        moved = 0
        for source in range(n):
            for dest in range(n):
                rows = buckets[source][dest]
                out[dest].extend(rows)
                if dest != source:
                    moved += len(rows)
        self._ctx.interconnect.record_redistribution(moved * width)
        return out

    # ---- the pipeline runner ----------------------------------------------

    def _run_pipeline(
        self, top: PhysicalNode, aggregate: PhysicalAggregate | None = None
    ):
        """Run the scan pipeline rooted at *top* on slice workers.

        Returns per-slice row lists (row / partition pipelines) or
        per-slice partial-state dicts (*aggregate* given), or None when
        the pipeline cannot be pushed down (system-table scan).
        """
        chain: list[PhysicalNode] = []
        node = top
        while not isinstance(node, PhysicalScan):
            chain.append(node)
            node = node.child
        scan = node
        chain.append(scan)
        if scan.table.name in self._ctx.system_rows:
            return None

        stage_nodes = list(reversed(chain[:-1]))  # bottom-up, above the scan
        stages = []
        for stage in stage_nodes:
            if isinstance(stage, PhysicalFilter):
                stages.append(("filter", stage.condition))
            else:
                stages.append(("project", tuple(stage.expressions)))

        partition_key = (
            self._pending_partition.get(id(top)) if aggregate is None else None
        )
        spec = PipelineSpec(
            table=scan.table.name,
            column_names=tuple(scan_column_names(scan)),
            zone_predicates=tuple(scan.zone_predicates),
            filters=tuple(scan.filters),
            stages=tuple(stages),
            group_exprs=(
                tuple(aggregate.group_exprs) if aggregate is not None else None
            ),
            aggregates=(
                tuple((call.aggregate, call.argument) for call in aggregate.aggregates)
                if aggregate is not None
                else ()
            ),
            partition_key=partition_key or 0,
            partition_slices=(
                self._ctx.slice_count if partition_key is not None else 0
            ),
        )
        tasks = self._morselize(scan, spec, aggregate is not None)
        workers, mode = self._effective()
        # Start the fused nodes' clocks before dispatch so their elapsed
        # spans the worker work (the top node's clock already runs — _run
        # begins it before _run_node).
        for fused in chain:
            self._begin_stat(fused)
        results = self._dispatch(tasks, workers, mode)

        # Replay worker disk reads (and any spill IO) through the
        # leader's disks in morsel order: identical accounting (and
        # injected media-fault / DISK_FULL sequence) to a serial scan.
        for task, result in zip(tasks, results):
            disk = self._ctx.slices[task.slice_index].disk
            for nbytes in result.io_log:
                disk.record_read(nbytes)
            if result.spill_log:
                self._ctx.spill.replay(disk, result.spill_log)
                self._note_spill(aggregate, _WorkerSpill(result), disk.disk_id)

        self._pipeline_stats(
            top, scan, stage_nodes, aggregate, tasks, results, workers, mode
        )

        if aggregate is not None:
            return self._assemble_partials(aggregate, tasks, results)
        if spec.partition_slices:
            return self._assemble_buckets(top, spec, tasks, results)
        per_slice: PerSlice = [[] for _ in self._ctx.slices]
        for task, result in zip(tasks, results):
            per_slice[task.slice_index].extend(result.rows)
        return per_slice

    def _morselize(
        self, scan: PhysicalScan, spec: PipelineSpec, for_aggregate: bool
    ) -> list[MorselTask]:
        """Split every shard of the scanned table into block-range tasks.

        All slices are scanned even for DISTSTYLE ALL tables — the serial
        engines drain every replica too (and charge every disk), and the
        aggregate assembly keeps only slice 0's partials, mirroring
        ``_one_copy``.
        """
        cfg = self._cfg
        step = max(1, cfg.morsel_blocks if cfg is not None else 4)
        ship_limit = (
            0 if for_aggregate
            else (cfg.row_ship_limit if cfg is not None else 0)
        )
        # Aggregate morsels inherit the query's memory budget: their
        # state maps are the only worker-side structures that grow
        # unbounded (row pipelines are bounded by the ship limit).
        memory_limit = 0
        if for_aggregate:
            state = self._spill_state()
            if state is not None and state[0].limit_bytes:
                memory_limit = state[0].limit_bytes
        tasks: list[MorselTask] = []
        registry_id = cfg.registry_id if cfg is not None else 0
        for index, store in enumerate(self._ctx.slices):
            if not store.has_shard(spec.table):
                continue
            blocks = shard_block_count(store.shard(spec.table))
            starts = list(range(0, blocks, step)) or [0]
            for j, start in enumerate(starts):
                tasks.append(
                    MorselTask(
                        registry_id=registry_id,
                        slice_index=index,
                        slice_id=store.slice_id,
                        block_start=start,
                        block_end=min(start + step, blocks),
                        include_tail=(j == len(starts) - 1),
                        pipeline=spec,
                        snapshot=self._ctx.snapshot,
                        row_ship_limit=ship_limit,
                        memory_limit=memory_limit,
                    )
                )
        return tasks

    def _dispatch(
        self, tasks: list[MorselTask], workers: int, mode: str
    ) -> list[MorselResult]:
        """Run tasks on the pool; results come back in task (morsel) order.

        Worker-crash faults are drawn on the leader per task, in morsel
        order, from the injector's "worker" stream — deterministic no
        matter how the OS schedules the pool. A crashed or pool-broken
        morsel is re-executed serially on the leader; so is one whose
        row output overflowed the ship limit.
        """
        injector = self._ctx.fault_injector
        prepared = []
        for task in tasks:
            if injector is not None and injector.worker_crash(task.slice_id):
                task = replace(task, crash=True)
            prepared.append(task)

        results: list[MorselResult | None] = [None] * len(prepared)
        if mode == "serial":
            for i, task in enumerate(prepared):
                results[i] = self._run_or_recover(i, task)
        else:
            manager = self._cfg.pool_manager
            scanned = {task.pipeline.table for task in prepared}
            try:
                pool = manager.pool(workers, mode, tables=scanned)
                # Pooled row pipelines ship typed columns across the
                # pipe; inline re-runs (crash/overflow recovery below)
                # use the un-flagged tasks and keep plain lists.
                futures = [
                    pool.submit(replace(task, pack_rows=True))
                    for task in prepared
                ]
            except (BrokenProcessPool, OSError):
                manager.invalidate()
                futures = None
            if futures is None:
                for i, task in enumerate(prepared):
                    results[i] = self._run_or_recover(i, task)
            else:
                for i, future in enumerate(futures):
                    try:
                        results[i] = future.result()
                    except WorkerCrashError:
                        results[i] = self._recover(i, prepared[i])
                    except BrokenProcessPool:
                        manager.invalidate()
                        results[i] = self._recover(
                            i, prepared[i], detail="pool broken"
                        )

        for i, result in enumerate(results):
            if result.overflow:
                # Too many rows to ship: the leader re-runs the morsel
                # locally (its stats replace the worker's attempt).
                results[i] = run_morsel(
                    replace(tasks[i], row_ship_limit=0, crash=False),
                    self._ctx.slices,
                )
            elif isinstance(result.rows, PackedRows):
                result.rows = unpack_rows(result.rows)
        return results

    def _run_or_recover(self, index: int, task: MorselTask) -> MorselResult:
        if task.crash:
            return self._recover(index, task)
        return run_morsel(task, self._ctx.slices)

    def _recover(
        self, index: int, task: MorselTask, detail: str = "injected crash"
    ) -> MorselResult:
        """Serial re-execution of a morsel whose worker died."""
        injector = self._ctx.fault_injector
        if injector is not None:
            injector.record(
                FaultKind.WORKER_CRASH.value,
                task.slice_id,
                f"morsel {index}: {detail}",
            )
            injector.record(
                "recovery:morsel_rerun", task.slice_id, f"morsel {index}"
            )
        entry = self._slice_entry(task)
        entry.crashes += 1
        return run_morsel(replace(task, crash=False), self._ctx.slices)

    # ---- result assembly ---------------------------------------------------

    def _assemble_partials(
        self,
        aggregate: PhysicalAggregate,
        tasks: list[MorselTask],
        results: list[MorselResult],
    ) -> list[dict]:
        """Merge per-morsel partial states into per-slice dicts, in morsel
        order — group-key insertion order therefore matches a serial scan,
        and the inherited _merge_partials sees exactly what it would see
        from serial per-slice accumulation."""
        aggregates = [call.aggregate for call in aggregate.aggregates]
        partials: list[dict] = [{} for _ in self._ctx.slices]
        for task, result in zip(tasks, results):
            target = partials[task.slice_index]
            for key, entry in result.partial.items():
                existing = target.get(key)
                if existing is None:
                    target[key] = entry
                else:
                    for i, agg in enumerate(aggregates):
                        existing[i] = agg.merge(existing[i], entry[i])
        if aggregate.child.partitioning.kind == "all":
            # Every slice holds a full replica; keep one copy of the
            # partials (the serial path's _one_copy before accumulation).
            partials = [partials[0]] + [{} for _ in self._ctx.slices[1:]]
        return partials

    def _assemble_buckets(
        self,
        top: PhysicalNode,
        spec: PipelineSpec,
        tasks: list[MorselTask],
        results: list[MorselResult],
    ) -> PerSlice:
        """Stash per-source destination buckets for _shuffle_side and
        return flat per-slice row lists for the generic join plumbing."""
        n = spec.partition_slices
        buckets = [[[] for _ in range(n)] for _ in self._ctx.slices]
        for task, result in zip(tasks, results):
            source = buckets[task.slice_index]
            for dest in range(n):
                source[dest].extend(result.buckets[dest])
        self._prebucketed[id(top)] = buckets
        return [
            [row for dest in source for row in dest] for source in buckets
        ]

    # ---- instrumentation ---------------------------------------------------

    def _pipeline_stats(
        self,
        top: PhysicalNode,
        scan: PhysicalScan,
        stage_nodes: list[PhysicalNode],
        aggregate: PhysicalAggregate | None,
        tasks: list[MorselTask],
        results: list[MorselResult],
        workers: int,
        mode: str,
    ) -> None:
        """Populate OperatorStats for the fused pipeline's interior.

        The topmost counted node (the aggregate, or a non-scan pipeline
        top) still gets its row count from the generic _run/_count_slices
        path; everything below is filled in here from worker counters.
        """
        morsels = len(tasks)
        scan_stat = self._begin_stat(scan)
        if scan_stat is not None:
            local = self._scan_locals.get(scan_stat.step)
            if local is None:
                local = ScanStats()
                self._scan_locals[scan_stat.step] = local
            for result in results:
                local.merge(result.scan)
            scan_stat.rows += sum(r.scanned_rows for r in results)
            scan_stat.workers = workers
            scan_stat.morsels += morsels
            self._touch(scan_stat, self._start_times[scan_stat.step])

        # Interior stage nodes: everything above the scan except the
        # counted top (for row pipelines the top is counted generically;
        # under an aggregate every stage node is interior).
        counted = stage_nodes if aggregate is not None else stage_nodes[:-1]
        for i, stage in enumerate(counted):
            stat = self._begin_stat(stage)
            if stat is None:
                continue
            stat.rows += sum(
                r.stage_rows[i] for r in results if i < len(r.stage_rows)
            )
            stat.workers = workers
            stat.morsels += morsels
            self._touch(stat, self._start_times[stat.step])

        # Mark the counted top (aggregate or pipeline top) with its
        # degree of parallelism for EXPLAIN ANALYZE / svl_query_summary.
        # A scan-topped pipeline was already marked above.
        record = aggregate if aggregate is not None else top
        if record is not scan:
            top_stat = self._begin_stat(record)
            if top_stat is not None:
                top_stat.workers = workers
                top_stat.morsels += morsels

        for task, result in zip(tasks, results):
            entry = self._slice_entry(task, mode)
            entry.morsels += 1
            entry.scanned_rows += result.scanned_rows
            entry.elapsed_us += result.elapsed_us
            if result.rows is not None:
                entry.rows += len(result.rows)
            elif result.buckets is not None:
                entry.rows += sum(len(b) for b in result.buckets)
            elif result.partial is not None:
                entry.rows += len(result.partial)

    def _slice_entry(self, task: MorselTask, mode: str | None = None) -> SliceExec:
        entry = self._slice_exec.get(task.slice_id)
        if entry is None:
            _, effective_mode = self._effective()
            entry = SliceExec(
                slice_id=task.slice_id,
                node_id=task.slice_id.rsplit("-s", 1)[0],
                mode=mode or effective_mode,
            )
            self._slice_exec[task.slice_id] = entry
        return entry

    def _finish_stats(self) -> None:
        for store in self._ctx.slices:
            entry = self._slice_exec.get(store.slice_id)
            if entry is not None:
                self._ctx.stats.slice_exec.append(entry)
        self._slice_exec = {}
        super()._finish_stats()
