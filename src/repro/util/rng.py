"""Deterministic random number generation.

Every stochastic component in the library draws from a
:class:`DeterministicRng` seeded explicitly by its owner, so simulations are
reproducible run to run. Child generators are derived by name, so adding a
new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng(random.Random):
    """A seeded RNG that can spawn independent, named child streams."""

    def __init__(self, seed: int | str = 0):
        self._seed_value = seed
        super().__init__(self._normalize(seed))

    @staticmethod
    def _normalize(seed: int | str) -> int:
        if isinstance(seed, int):
            return seed
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, name: str) -> "DeterministicRng":
        """Return an independent generator derived from this seed and *name*.

        Streams for distinct names never interfere: drawing more values from
        one child does not change the sequence produced by another.
        """
        material = f"{self._seed_value}/{name}"
        return DeterministicRng(material)

    def exponential(self, rate: float) -> float:
        """Sample an exponential inter-arrival time with the given *rate*."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.expovariate(rate)

    def bounded_normal(self, mu: float, sigma: float, low: float, high: float) -> float:
        """Sample a normal variate clamped to [low, high]."""
        if low > high:
            raise ValueError(f"invalid bounds: low={low} > high={high}")
        return min(high, max(low, self.normalvariate(mu, sigma)))
