"""Shared utilities: unit helpers, deterministic RNG, and small statistics."""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    PB,
    SECOND,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    YEAR,
    format_bytes,
    format_duration,
)
from repro.util.rng import DeterministicRng
from repro.util.stats import mean, median, percentile, stdev

__all__ = [
    "KB", "MB", "GB", "TB", "PB",
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK", "YEAR",
    "format_bytes", "format_duration",
    "DeterministicRng",
    "mean", "median", "percentile", "stdev",
]
