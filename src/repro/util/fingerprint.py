"""Result fingerprinting for workload capture and replay.

A fingerprint is a sha256 digest over a result set's column names and
row values (``repr`` of each cell, so ``1`` and ``1.0`` and ``"1"``
hash differently — replay correctness means *bit-identical* results,
not merely equal-looking ones). The replay differ compares the
fingerprint recorded in ``stl_query`` at capture time against the one
the replayed execution produced.

Fingerprinting is capped: hashing a 100k-row result on every query
would tax the hot path the result cache exists to protect, so results
beyond :data:`FINGERPRINT_MAX_ROWS` get an empty fingerprint and the
differ treats them as uncomparable (latency is still compared).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

#: Results larger than this many rows are not fingerprinted.
FINGERPRINT_MAX_ROWS = 4096


def result_fingerprint(
    columns: Sequence[str], rows: Sequence[Iterable[object]]
) -> str:
    """Hex digest of one result set, or "" when the result is too large.

    Row *order* is part of the digest: the engine's executors are
    deterministic for a fixed executor kind, and an ORDER BY-less
    query replayed on the same executor reproduces the same order.
    """
    if len(rows) > FINGERPRINT_MAX_ROWS:
        return ""
    digest = hashlib.sha256()
    digest.update(repr(tuple(columns)).encode())
    for row in rows:
        digest.update(b"\x1e")
        digest.update(repr(tuple(row)).encode())
    return digest.hexdigest()
