"""Byte-size and duration constants plus human-readable formatters.

All sizes in the library are plain ints (bytes) and all simulated durations
are floats (seconds); these helpers keep magic numbers out of the code.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB
PB = 1024 * TB

SECOND = 1.0
MINUTE = 60.0
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY
YEAR = 365 * DAY

_BYTE_UNITS = [(PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]


def format_bytes(n: int | float) -> str:
    """Render a byte count with a binary-unit suffix.

    >>> format_bytes(1536)
    '1.50 KB'
    >>> format_bytes(10)
    '10 B'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for factor, suffix in _BYTE_UNITS:
        if n >= factor:
            return f"{n / factor:.2f} {suffix}"
    return f"{int(n)} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit.

    >>> format_duration(90)
    '1.5 min'
    >>> format_duration(0.25)
    '250 ms'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1:
        return f"{seconds * 1000:.0f} ms"
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f} h"
    return f"{seconds / DAY:.1f} d"
