"""Small statistics helpers used by telemetry and the benchmark harness."""

from __future__ import annotations

import math
from collections.abc import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (average of middle two for even lengths)."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile, pct in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for length-1 input."""
    if not values:
        raise ValueError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    mu = mean(values)
    var = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var)
