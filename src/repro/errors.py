"""Exception hierarchy for the repro data warehouse.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most specific
subclass available; error messages name the offending object (table,
column, cluster, ...) so that failures are actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# SQL front end
# --------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for errors in the SQL front end."""


class LexError(SqlError):
    """Raised when the lexer encounters an unrecognised character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class AnalysisError(SqlError):
    """Raised during semantic analysis (unknown table/column, type mismatch...)."""


class TypeMismatchError(AnalysisError):
    """Raised when an expression combines values of incompatible types."""


# --------------------------------------------------------------------------
# Catalog / DDL
# --------------------------------------------------------------------------

class CatalogError(ReproError):
    """Base class for catalog errors."""


class TableNotFoundError(CatalogError):
    def __init__(self, name: str):
        super().__init__(f"table {name!r} does not exist")
        self.table_name = name


class TableAlreadyExistsError(CatalogError):
    def __init__(self, name: str):
        super().__init__(f"table {name!r} already exists")
        self.table_name = name


class ColumnNotFoundError(CatalogError):
    def __init__(self, column: str, table: str | None = None):
        where = f" in table {table!r}" if table else ""
        super().__init__(f"column {column!r} does not exist{where}")
        self.column_name = column
        self.table_name = table


class AmbiguousColumnError(CatalogError):
    def __init__(self, column: str):
        super().__init__(f"column reference {column!r} is ambiguous")
        self.column_name = column


# --------------------------------------------------------------------------
# Data / execution
# --------------------------------------------------------------------------

class DataError(ReproError):
    """Raised for invalid data values (overflow, bad cast, NULL violation)."""


class ExecutionError(ReproError):
    """Raised when a query fails during execution."""


class DivisionByZeroError(ExecutionError):
    def __init__(self) -> None:
        super().__init__("division by zero")


class NodeFailureError(ExecutionError):
    """Raised when a compute node dies while a query is touching it."""

    def __init__(self, node_id: str, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"compute node {node_id} failed mid-query{suffix}")
        self.node_id = node_id


class WorkerCrashError(ExecutionError):
    """Raised inside a parallel worker killed by an injected crash.

    Deliberately NOT in :data:`QUERY_RECOVERABLE_ERRORS`: the parallel
    executor recovers from it internally by re-executing the failed
    morsel serially on the leader, so it never reaches the session's
    segment-retry loop.
    """

    def __init__(self, slice_id: str, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"parallel worker for {slice_id} crashed{suffix}")
        self.slice_id = slice_id


class SpillCapacityError(ExecutionError):
    """Raised when a query must spill but its slice's disk has no room
    for more temp space (the disk is full, or a DISK_FULL fault window
    is active).

    Deliberately NOT in :data:`QUERY_RECOVERABLE_ERRORS`: retrying the
    segment would just fill the disk again. The session converts it into
    a clean WLM shed — the query fails with this typed error, its temp
    files are reclaimed, and an ``stl_wlm_rule_action`` row records the
    shed — rather than crashing or leaking spill bytes.
    """

    def __init__(self, disk_id: str, needed: int, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"no spill capacity on disk {disk_id} for {needed} bytes{suffix}"
        )
        self.disk_id = disk_id
        self.needed = needed


class QueryRetryExhaustedError(ExecutionError):
    """Raised when segment retry gives up after repeated recoverable faults."""

    def __init__(self, attempts: int, last_error: Exception):
        super().__init__(
            f"query failed after {attempts} segment retries: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class CopyError(ReproError):
    """Raised when a COPY load fails (malformed source, missing object...)."""


class TransactionError(ReproError):
    """Raised for transaction protocol violations (commit conflicts...)."""


class SerializationError(TransactionError):
    """Raised when concurrent transactions cannot be serialized."""


# --------------------------------------------------------------------------
# Storage / durability
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for block storage errors."""


class BlockCorruptionError(StorageError):
    """Raised when a block fails its checksum on read."""


class DiskFailureError(StorageError):
    """Raised when a simulated disk has failed and cannot serve IO."""


class DiskMediaError(StorageError):
    """Raised for a transient per-IO media error (a bad sector read/write
    that succeeds on retry or is served from a replica)."""

    def __init__(self, disk_id: str, op: str = "io"):
        super().__init__(f"media error during {op} on disk {disk_id}")
        self.disk_id = disk_id
        self.op = op


class DurabilityLossError(StorageError):
    """Raised when no surviving replica of a block exists anywhere."""


# --------------------------------------------------------------------------
# Cloud substrate
# --------------------------------------------------------------------------

class CloudError(ReproError):
    """Base class for simulated AWS service errors."""


class NoSuchKeyError(CloudError):
    """Raised by the simulated S3 when an object does not exist."""

    def __init__(self, bucket: str, key: str):
        super().__init__(f"no such key: s3://{bucket}/{key}")
        self.bucket = bucket
        self.key = key


class NoSuchBucketError(CloudError):
    def __init__(self, bucket: str):
        super().__init__(f"no such bucket: {bucket}")
        self.bucket = bucket


class ServiceUnavailableError(CloudError):
    """Raised when a simulated service is in an injected outage.

    An outage is *persistent*: it lasts until the injected window ends, so
    retrying inside it is pointless and clients surface the error instead.
    """


class TransientServiceError(CloudError):
    """Base class for per-request errors that a backed-off retry may clear."""


class S3TransientError(TransientServiceError):
    """A single S3 request failed (HTTP 503 SlowDown analogue)."""

    def __init__(self, region: str, detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(f"S3 {region} transient request failure{suffix}")
        self.region = region


class InsufficientCapacityError(CloudError):
    """Raised by simulated EC2 when no instance capacity is available."""


class KmsError(CloudError):
    """Raised by the simulated key management service."""


# --------------------------------------------------------------------------
# Concurrent server frontend
# --------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for concurrent-session server errors."""


class SessionClosedError(ServerError):
    """Raised when work is submitted to a closed or draining session."""

    def __init__(self, session_id: int, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"session {session_id} is closed{suffix}")
        self.session_id = session_id


class ServerOverloadError(ServerError):
    """Raised when a session's bounded submission queue is full.

    Backpressure at the connection, before WLM: the client must slow
    down or the work is refused outright (never buffered without bound).
    """

    def __init__(self, session_id: int, depth: int):
        super().__init__(
            f"session {session_id} submission queue is full ({depth} pending)"
        )
        self.session_id = session_id
        self.depth = depth


class AdmissionError(ExecutionError):
    """Base class for live WLM admission failures (shed / timeout)."""


class AdmissionShedError(AdmissionError):
    """Raised when a queue at max depth sheds an arriving query."""

    def __init__(self, queue: str, waiting: int):
        super().__init__(
            f"WLM queue {queue!r} shed the query ({waiting} already waiting)"
        )
        self.queue = queue
        self.waiting = waiting


class AdmissionTimeoutError(AdmissionError):
    """Raised when a query waits longer than the queue's admission timeout."""

    def __init__(self, queue: str, timeout_s: float):
        super().__init__(
            f"WLM queue {queue!r} admission timed out after {timeout_s}s"
        )
        self.queue = queue
        self.timeout_s = timeout_s


class ReplayError(ReproError):
    """Raised for workload capture/replay protocol problems."""


# --------------------------------------------------------------------------
# Control plane
# --------------------------------------------------------------------------

class ControlPlaneError(ReproError):
    """Base class for control-plane errors."""


class ClusterNotFoundError(ControlPlaneError):
    def __init__(self, cluster_id: str):
        super().__init__(f"cluster {cluster_id!r} does not exist")
        self.cluster_id = cluster_id


class InvalidClusterStateError(ControlPlaneError):
    """Raised when an operation is not legal in the cluster's current state."""


class ClusterReadOnlyError(InvalidClusterStateError):
    """Raised when a write reaches a cluster degraded to read-only mode."""

    def __init__(self, reason: str):
        super().__init__(f"cluster is read-only: {reason}")
        self.reason = reason


class WorkflowError(ControlPlaneError):
    """Raised when a control-plane workflow fails after exhausting retries."""


class SnapshotNotFoundError(ControlPlaneError):
    def __init__(self, snapshot_id: str):
        super().__init__(f"snapshot {snapshot_id!r} does not exist")
        self.snapshot_id = snapshot_id


#: Faults a leader-side segment retry can clear once a recovery handler has
#: repaired the cause (node failover, scrub-and-repair, transient media IO).
QUERY_RECOVERABLE_ERRORS = (NodeFailureError, BlockCorruptionError, DiskMediaError)
