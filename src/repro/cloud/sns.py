"""Simulated SNS: topic-based notifications for customer alarms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.simclock import SimClock


@dataclass(frozen=True)
class Notification:
    topic: str
    subject: str
    message: str
    published_at: float


class SimSNS:
    """Publish/subscribe with full delivery history."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._subscribers: dict[str, list[Callable[[Notification], None]]] = {}
        self.delivered: list[Notification] = []

    def subscribe(
        self, topic: str, handler: Callable[[Notification], None]
    ) -> None:
        self._subscribers.setdefault(topic, []).append(handler)

    def publish(self, topic: str, subject: str, message: str) -> Notification:
        notification = Notification(
            topic=topic,
            subject=subject,
            message=message,
            published_at=self._clock.now,
        )
        self.delivered.append(notification)
        for handler in self._subscribers.get(topic, []):
            handler(notification)
        return notification

    def topic_history(self, topic: str) -> list[Notification]:
        return [n for n in self.delivered if n.topic == topic]
