"""Discrete-event simulation clock.

Control-plane operations run in simulated time so that "a 48-hour restore"
is a model output rather than a wall-clock wait. The clock supports both
styles used in the codebase: sequential workflows call :meth:`advance`
with computed durations, and background processes (continuous backup,
failure injection, weekly patches) register callbacks with
:meth:`schedule` / :meth:`schedule_repeating` which fire as time passes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class ScheduledEvent:
    """One pending callback, ordered by firing time."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """Simulated seconds since the simulation epoch."""

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = ScheduledEvent(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_repeating(
        self, interval: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* every *interval* seconds until cancelled.

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole series.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        series = ScheduledEvent(self._now + interval, next(self._sequence), lambda: None)

        def fire() -> None:
            if series.cancelled:
                return
            callback()
            if not series.cancelled:
                event = self.schedule(interval, fire)
                series.time = event.time  # keep the handle's time current

        series.callback = fire
        heapq.heappush(self._queue, series)
        return series

    def advance(self, duration: float) -> None:
        """Move time forward, firing any events that come due on the way."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.run_until(self._now + duration)

    def run_until(self, deadline: float) -> None:
        """Fire events in order up to *deadline*, then set now = deadline."""
        if deadline < self._now:
            raise ValueError(
                f"cannot run backwards: now={self._now}, deadline={deadline}"
            )
        while self._queue and self._queue[0].time <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
        self._now = deadline

    def run_until_idle(self, max_time: float | None = None) -> None:
        """Fire every pending event (bounded by *max_time* if given)."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if max_time is not None and head.time > max_time:
                break
            heapq.heappop(self._queue)
            self._now = max(self._now, head.time)
            head.callback()
        if max_time is not None and max_time > self._now:
            self._now = max_time

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
