"""Simulated Amazon Simple Workflow: retried, audited step execution.

Control-plane actions (provision, patch, backup, restore, resize, node
replacement) run as workflows: ordered steps with per-step retry policies
and a full execution history. The history is what the operations
simulation mines for failure statistics.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.simclock import SimClock
from repro.errors import WorkflowError
from repro.util.rng import DeterministicRng


class StepStatus(enum.Enum):
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    RETRIED = "retried"


@dataclass
class WorkflowStep:
    """One step: an action returning the simulated duration it consumed.

    ``action`` may raise to signal failure; the engine retries up to
    ``max_attempts`` with ``retry_delay_s`` between attempts.
    """

    name: str
    action: Callable[[], float]
    max_attempts: int = 3
    retry_delay_s: float = 30.0
    #: Exponential backoff multiplier between attempts; 1.0 keeps the
    #: classic fixed-delay retry schedule.
    backoff_factor: float = 1.0
    max_delay_s: float = float("inf")
    #: Fraction of extra random delay (0 disables jitter).
    jitter_fraction: float = 0.0

    def delay_before(self, attempt: int, rng: DeterministicRng | None) -> float:
        """Backoff after failed attempt number *attempt* (1-based)."""
        delay = min(
            self.max_delay_s,
            self.retry_delay_s * self.backoff_factor ** (attempt - 1),
        )
        if rng is not None and self.jitter_fraction > 0.0:
            delay *= 1.0 + self.jitter_fraction * rng.random()
        return delay


@dataclass
class StepResult:
    step_name: str
    status: StepStatus
    attempts: int
    started_at: float
    finished_at: float
    error: str | None = None

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class Workflow:
    """A named step sequence."""

    name: str
    steps: list[WorkflowStep] = field(default_factory=list)

    def step(
        self,
        name: str,
        action: Callable[[], float],
        max_attempts: int = 3,
        retry_delay_s: float = 30.0,
        backoff_factor: float = 1.0,
        max_delay_s: float = float("inf"),
        jitter_fraction: float = 0.0,
    ) -> "Workflow":
        """Append a step (builder style)."""
        self.steps.append(
            WorkflowStep(
                name,
                action,
                max_attempts,
                retry_delay_s,
                backoff_factor,
                max_delay_s,
                jitter_fraction,
            )
        )
        return self


@dataclass
class WorkflowExecution:
    execution_id: str
    workflow_name: str
    started_at: float
    finished_at: float = 0.0
    succeeded: bool = False
    results: list[StepResult] = field(default_factory=list)
    #: Every attempt, including the RETRIED ones that preceded a step's
    #: final result (``results`` keeps its one-entry-per-step shape).
    attempt_history: list[StepResult] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class SimWorkflowService:
    """Runs workflows on the simulation clock, keeping full history."""

    def __init__(self, clock: SimClock, rng: DeterministicRng | None = None):
        self._clock = clock
        self._rng = rng
        self._ids = itertools.count(1)
        self.history: list[WorkflowExecution] = []

    def run(self, workflow: Workflow) -> WorkflowExecution:
        """Execute all steps; raises WorkflowError if any step exhausts its
        retries (the execution is still recorded in history)."""
        execution = WorkflowExecution(
            execution_id=f"wf-{next(self._ids):06d}",
            workflow_name=workflow.name,
            started_at=self._clock.now,
        )
        self.history.append(execution)
        for step in workflow.steps:
            result = self._run_step(step, execution)
            execution.results.append(result)
            if result.status is StepStatus.FAILED:
                execution.finished_at = self._clock.now
                raise WorkflowError(
                    f"workflow {workflow.name!r} failed at step "
                    f"{step.name!r}: {result.error}"
                )
        execution.finished_at = self._clock.now
        execution.succeeded = True
        return execution

    def _run_step(
        self, step: WorkflowStep, execution: WorkflowExecution
    ) -> StepResult:
        started = self._clock.now
        error: str | None = None
        for attempt in range(1, step.max_attempts + 1):
            attempt_started = self._clock.now
            try:
                duration = step.action()
            except WorkflowError:
                raise
            except Exception as exc:  # noqa: BLE001 - retries need breadth
                error = str(exc)
                if attempt < step.max_attempts:
                    execution.attempt_history.append(
                        StepResult(
                            step_name=step.name,
                            status=StepStatus.RETRIED,
                            attempts=attempt,
                            started_at=attempt_started,
                            finished_at=self._clock.now,
                            error=error,
                        )
                    )
                    self._clock.advance(step.delay_before(attempt, self._rng))
                continue
            self._clock.advance(max(0.0, duration))
            result = StepResult(
                step_name=step.name,
                status=StepStatus.SUCCEEDED,
                attempts=attempt,
                started_at=started,
                finished_at=self._clock.now,
            )
            execution.attempt_history.append(result)
            return result
        result = StepResult(
            step_name=step.name,
            status=StepStatus.FAILED,
            attempts=step.max_attempts,
            started_at=started,
            finished_at=self._clock.now,
            error=error,
        )
        execution.attempt_history.append(result)
        return result

    def executions_of(self, workflow_name: str) -> list[WorkflowExecution]:
        return [e for e in self.history if e.workflow_name == workflow_name]
