"""Simulated Amazon S3: a durable, region-replicated object store.

Carries exactly the properties the paper's backup design relies on
(§2.2): very high durability ("99.9999999%"), incremental block-level
puts, range reads for page-faulting blocks during streaming restore, and
cross-region replication for disaster recovery. Transfer durations follow
a simple latency + size/throughput model so control-plane workflows can
charge realistic simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoSuchBucketError, NoSuchKeyError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultSpec
from repro.util.rng import DeterministicRng
from repro.util.units import MB


@dataclass
class S3Config:
    """Latency/throughput model, tuned to 2014-era S3 from EC2."""

    request_latency_s: float = 0.02
    throughput_bytes_per_s: float = 60 * MB
    #: Per-object per-year loss probability (11 nines durability).
    annual_loss_probability: float = 1e-11
    cross_region_latency_s: float = 0.08


@dataclass
class S3Object:
    key: str
    data: bytes
    metadata: dict[str, str] = field(default_factory=dict)
    stored_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.data)


class SimS3:
    """One region's object store (create more for cross-region DR)."""

    def __init__(
        self,
        region: str = "us-east-1",
        config: S3Config | None = None,
        clock=None,
        rng: DeterministicRng | None = None,
        injector: FaultInjector | None = None,
    ):
        self.region = region
        self.config = config or S3Config()
        self._clock = clock
        self._rng = rng or DeterministicRng(f"s3-{region}")
        self._injector = injector or FaultInjector(
            clock=clock, rng=self._rng.child("faults")
        )
        self._outage_spec: FaultSpec | None = None
        self._buckets: dict[str, dict[str, S3Object]] = {}
        self.bytes_in = 0
        self.bytes_out = 0
        self.put_count = 0
        self.get_count = 0

    # ---- failure injection -----------------------------------------------

    def attach_injector(self, injector: FaultInjector) -> None:
        """Route this store's fault decisions through a shared injector."""
        self._injector = injector
        self._outage_spec = None

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def start_outage(self) -> None:
        """Inject a regional S3 outage; all requests fail until ended."""
        if self._outage_spec is None:
            self._outage_spec = self._injector.add(
                FaultSpec(
                    FaultKind.S3_OUTAGE,
                    at_s=self._injector.now,
                    target=self.region,
                )
            )

    def end_outage(self) -> None:
        if self._outage_spec is not None:
            self._injector.cancel(self._outage_spec)
            self._outage_spec = None

    def _check_available(self, op: str = "request") -> None:
        """Per-request fault consultation: outages and transient 503s."""
        self._injector.s3_request(self.region, op)

    # ---- bucket/object API ----------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        self._check_available("create_bucket")
        self._buckets.setdefault(bucket, {})

    def has_bucket(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> dict[str, S3Object]:
        objects = self._buckets.get(bucket)
        if objects is None:
            raise NoSuchBucketError(bucket)
        return objects

    def put_object(
        self, bucket: str, key: str, data: bytes, metadata: dict | None = None
    ) -> float:
        """Store an object; returns the simulated transfer duration."""
        self._check_available("put_object")
        now = self._clock.now if self._clock is not None else 0.0
        self._bucket(bucket)[key] = S3Object(
            key=key, data=bytes(data), metadata=dict(metadata or {}), stored_at=now
        )
        self.bytes_in += len(data)
        self.put_count += 1
        return self.transfer_time(len(data))

    def get_object(self, bucket: str, key: str) -> S3Object:
        self._check_available("get_object")
        obj = self._bucket(bucket).get(key)
        if obj is None:
            raise NoSuchKeyError(bucket, key)
        self.bytes_out += obj.size
        self.get_count += 1
        return obj

    def head_object(self, bucket: str, key: str) -> S3Object:
        """Metadata-only read (no transfer accounting)."""
        self._check_available("head_object")
        obj = self._bucket(bucket).get(key)
        if obj is None:
            raise NoSuchKeyError(bucket, key)
        return obj

    def has_object(self, bucket: str, key: str) -> bool:
        return key in self._buckets.get(bucket, {})

    def delete_object(self, bucket: str, key: str) -> None:
        self._check_available("delete_object")
        self._bucket(bucket).pop(key, None)

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        self._check_available("list_objects")
        return sorted(
            key for key in self._bucket(bucket) if key.startswith(prefix)
        )

    def bucket_bytes(self, bucket: str) -> int:
        return sum(obj.size for obj in self._bucket(bucket).values())

    # ---- models -------------------------------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        """Simulated seconds to move *nbytes* in or out of the store.

        Active slow-request fault windows stretch the duration.
        """
        base = (
            self.config.request_latency_s
            + nbytes / self.config.throughput_bytes_per_s
        )
        return base * self._injector.s3_slow_factor(self.region)

    def simulate_annual_losses(self, bucket: str) -> int:
        """Draw object losses for one simulated year of storage and delete
        the losers (durability experiments)."""
        objects = self._bucket(bucket)
        lost = [
            key
            for key in objects
            if self._rng.random() < self.config.annual_loss_probability
        ]
        for key in lost:
            del objects[key]
        return len(lost)

    def replicate_to(self, other: "SimS3", bucket: str, prefix: str = "") -> int:
        """Cross-region replication (DR): copy objects to *other*'s bucket.

        Returns the number of objects copied. Existing objects with the
        same key are overwritten, mirroring S3 replication semantics.
        """
        self._check_available("replicate")
        other.create_bucket(bucket)
        copied = 0
        for key in self.list_objects(bucket, prefix):
            obj = self._bucket(bucket)[key]
            other.put_object(bucket, key, obj.data, obj.metadata)
            copied += 1
        return copied
