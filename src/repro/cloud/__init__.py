"""Simulated AWS substrate.

The paper's control plane leans on real AWS services (§2.3): EC2 for
instances, S3 for backup, SWF for workflows, CloudWatch for metrics, SNS
for alarms, KMS/CloudHSM for keys. This package simulates each of them on
a shared discrete-event clock with the properties the paper's claims
depend on: S3's durability and throughput, EC2's provisioning latency and
capacity interruptions, workflow retries, and key wrapping.
"""

from repro.cloud.simclock import SimClock, ScheduledEvent
from repro.cloud.s3 import SimS3, S3Object, S3Config
from repro.cloud.ec2 import SimEC2, Ec2Config, Instance
from repro.cloud.swf import SimWorkflowService, Workflow, WorkflowStep, StepResult
from repro.cloud.cloudwatch import SimCloudWatch, MetricPoint
from repro.cloud.sns import SimSNS, Notification
from repro.cloud.kms import SimKMS, WrappedKey
from repro.cloud.cloudtrail import SimCloudTrail, AuditEvent
from repro.cloud.dynamodb import SimDynamoDB, DynamoTable
from repro.cloud.copysources import (
    attach_cloud_sources,
    s3_source,
    dynamodb_source,
    SshCommandRegistry,
)
from repro.cloud.environment import CloudEnvironment

__all__ = [
    "SimClock", "ScheduledEvent",
    "SimS3", "S3Object", "S3Config",
    "SimEC2", "Ec2Config", "Instance",
    "SimWorkflowService", "Workflow", "WorkflowStep", "StepResult",
    "SimCloudWatch", "MetricPoint",
    "SimSNS", "Notification",
    "SimKMS", "WrappedKey",
    "SimCloudTrail", "AuditEvent",
    "SimDynamoDB", "DynamoTable",
    "attach_cloud_sources", "s3_source", "dynamodb_source",
    "SshCommandRegistry",
    "CloudEnvironment",
]
