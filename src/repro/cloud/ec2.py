"""Simulated Amazon EC2: instance provisioning with warm pools.

Models the two provisioning regimes the paper contrasts (§3.1): cold
provisioning ("cluster creation times averaged 15 minutes") and the
preconfigured warm pool introduced later ("reduced provisioning time to
3 minutes, and meaningfully reduced abandonment"). Also supports the
capacity-interruption failure mode §5 discusses ("we support the ability
to preconfigure nodes in each data center, allowing us to continue to
provision and replace nodes ... if there is an Amazon EC2 provisioning
interruption").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import InsufficientCapacityError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultSpec
from repro.util.rng import DeterministicRng
from repro.util.units import MINUTE


@dataclass
class Ec2Config:
    """Provisioning-time model."""

    #: Cold boot: launch + image install + engine configuration.
    cold_mean_s: float = 12 * MINUTE
    cold_sigma_s: float = 2 * MINUTE
    #: Claiming a preconfigured node: attach + handshake.
    warm_mean_s: float = 90.0
    warm_sigma_s: float = 20.0
    #: Background rate at which the warm pool is replenished.
    warm_pool_target: int = 8


@dataclass
class Instance:
    instance_id: str
    instance_type: str
    launched_at: float
    from_warm_pool: bool
    healthy: bool = True


class SimEC2:
    """One region's instance provider."""

    def __init__(
        self,
        config: Ec2Config | None = None,
        clock=None,
        rng: DeterministicRng | None = None,
        injector: FaultInjector | None = None,
    ):
        self.config = config or Ec2Config()
        self._clock = clock
        self._rng = rng or DeterministicRng("ec2")
        self._injector = injector or FaultInjector(
            clock=clock, rng=self._rng.child("faults")
        )
        self._interruption_spec: FaultSpec | None = None
        self._ids = itertools.count(1)
        self._warm_pool: dict[str, int] = {}
        self.instances: dict[str, Instance] = {}

    # ---- warm pool --------------------------------------------------------

    def preconfigure(self, instance_type: str, count: int) -> None:
        """Stock the warm pool with ready-to-claim nodes of a type."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._warm_pool[instance_type] = (
            self._warm_pool.get(instance_type, 0) + count
        )

    def warm_pool_size(self, instance_type: str) -> int:
        return self._warm_pool.get(instance_type, 0)

    # ---- failure injection --------------------------------------------------

    def attach_injector(self, injector: FaultInjector) -> None:
        """Route capacity decisions through a shared fault injector."""
        self._injector = injector
        self._interruption_spec = None

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def start_capacity_interruption(self) -> None:
        """Cold provisioning fails until the interruption ends; warm-pool
        claims keep working — the paper's escalator-not-elevator example."""
        if self._interruption_spec is None:
            self._interruption_spec = self._injector.add(
                FaultSpec(
                    FaultKind.EC2_CAPACITY_WINDOW, at_s=self._injector.now
                )
            )

    def end_capacity_interruption(self) -> None:
        if self._interruption_spec is not None:
            self._injector.cancel(self._interruption_spec)
            self._interruption_spec = None

    @property
    def _interruption(self) -> bool:
        return self._injector.ec2_capacity_interrupted()

    # ---- provisioning ----------------------------------------------------------

    def provision(
        self, instance_type: str, count: int = 1, allow_cold: bool = True
    ) -> tuple[list[Instance], float]:
        """Acquire *count* instances.

        Warm-pool nodes are claimed first; the remainder cold-boots (in
        parallel, so duration is the max of the slowest instance). Returns
        (instances, simulated duration). Raises
        :class:`InsufficientCapacityError` when cold capacity is needed
        but interrupted.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        warm_available = self._warm_pool.get(instance_type, 0)
        from_warm = min(count, warm_available)
        cold = count - from_warm
        if cold > 0 and (self._interruption or not allow_cold):
            raise InsufficientCapacityError(
                f"cannot cold-provision {cold} x {instance_type}: "
                + ("capacity interruption" if self._interruption else "cold boot disabled")
            )
        self._warm_pool[instance_type] = warm_available - from_warm
        now = self._clock.now if self._clock is not None else 0.0
        instances: list[Instance] = []
        duration = 0.0
        for i in range(count):
            is_warm = i < from_warm
            cfg = self.config
            if is_warm:
                boot = self._rng.bounded_normal(
                    cfg.warm_mean_s, cfg.warm_sigma_s, 20.0, 10 * MINUTE
                )
            else:
                boot = self._rng.bounded_normal(
                    cfg.cold_mean_s, cfg.cold_sigma_s, 3 * MINUTE, 60 * MINUTE
                )
            duration = max(duration, boot)
            instance = Instance(
                instance_id=f"i-{next(self._ids):08x}",
                instance_type=instance_type,
                launched_at=now,
                from_warm_pool=is_warm,
            )
            self.instances[instance.instance_id] = instance
            instances.append(instance)
        return instances, duration

    def terminate(self, instance_id: str) -> None:
        self.instances.pop(instance_id, None)

    def fail_instance(self, instance_id: str) -> None:
        """Mark an instance unhealthy (host-manager detection fodder)."""
        instance = self.instances.get(instance_id)
        if instance is not None:
            instance.healthy = False
