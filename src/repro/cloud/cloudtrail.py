"""Simulated AWS CloudTrail: audit logging of control-plane actions.

"AWS CloudTrail for audit logging" (paper §2.3). Every management API
call is recorded with actor, action, resource, parameters and outcome;
the trail is queryable and can be archived to S3.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.cloud.s3 import SimS3
from repro.cloud.simclock import SimClock


@dataclass(frozen=True)
class AuditEvent:
    event_time: float
    actor: str
    action: str
    resource: str
    parameters: tuple[tuple[str, str], ...]
    success: bool
    error: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "eventTime": self.event_time,
                "actor": self.actor,
                "action": self.action,
                "resource": self.resource,
                "parameters": dict(self.parameters),
                "success": self.success,
                "error": self.error,
            },
            sort_keys=True,
        )


class SimCloudTrail:
    """Append-only audit trail with lookup and S3 archival."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self.events: list[AuditEvent] = []

    def record(
        self,
        actor: str,
        action: str,
        resource: str,
        parameters: dict[str, object] | None = None,
        success: bool = True,
        error: str = "",
    ) -> AuditEvent:
        event = AuditEvent(
            event_time=self._clock.now,
            actor=actor,
            action=action,
            resource=resource,
            parameters=tuple(
                sorted((k, str(v)) for k, v in (parameters or {}).items())
            ),
            success=success,
            error=error,
        )
        self.events.append(event)
        return event

    def lookup(
        self,
        action: str | None = None,
        resource: str | None = None,
        since: float | None = None,
    ) -> list[AuditEvent]:
        """Filter events (all criteria are conjunctive)."""
        out = []
        for event in self.events:
            if action is not None and event.action != action:
                continue
            if resource is not None and event.resource != resource:
                continue
            if since is not None and event.event_time < since:
                continue
            out.append(event)
        return out

    def archive_to_s3(self, s3: SimS3, bucket: str) -> str:
        """Write the full trail as one JSON-lines object; returns the key."""
        s3.create_bucket(bucket)
        key = f"trail/{self._clock.now:.0f}.jsonl"
        body = "\n".join(e.to_json() for e in self.events).encode("utf-8")
        s3.put_object(bucket, key, body)
        return key
