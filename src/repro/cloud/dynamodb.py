"""Simulated Amazon DynamoDB: a key-value item store COPY can ingest from.

§2.1: "The Amazon Redshift version of COPY provides direct access to load
data from Amazon S3, Amazon DynamoDB, Amazon EMR, or over an arbitrary
SSH connection." This module provides the DynamoDB side: named tables of
attribute-map items with scan (for COPY) and a provisioned-throughput
model for transfer-time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CloudError


@dataclass
class DynamoTable:
    name: str
    hash_key: str
    items: dict[object, dict] = field(default_factory=dict)
    read_capacity_units: int = 100

    def put_item(self, item: dict) -> None:
        key = item.get(self.hash_key)
        if key is None:
            raise CloudError(
                f"item missing hash key {self.hash_key!r} for table {self.name!r}"
            )
        self.items[key] = dict(item)

    def get_item(self, key: object) -> dict | None:
        item = self.items.get(key)
        return dict(item) if item is not None else None

    def scan(self) -> list[dict]:
        """Full scan in stable key order (what COPY consumes)."""
        return [dict(self.items[k]) for k in sorted(self.items, key=repr)]

    @property
    def item_count(self) -> int:
        return len(self.items)

    def scan_seconds(self) -> float:
        """Simulated full-scan duration under provisioned throughput:
        one RCU reads ~two 4KB-ish items per second in 2015 terms."""
        return self.item_count / max(1, self.read_capacity_units * 2)


class SimDynamoDB:
    """The regional table registry."""

    def __init__(self) -> None:
        self._tables: dict[str, DynamoTable] = {}

    def create_table(
        self, name: str, hash_key: str, read_capacity_units: int = 100
    ) -> DynamoTable:
        if name in self._tables:
            raise CloudError(f"DynamoDB table {name!r} already exists")
        table = DynamoTable(
            name=name, hash_key=hash_key, read_capacity_units=read_capacity_units
        )
        self._tables[name] = table
        return table

    def table(self, name: str) -> DynamoTable:
        table = self._tables.get(name)
        if table is None:
            raise CloudError(f"no such DynamoDB table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables
