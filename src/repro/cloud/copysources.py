"""COPY source providers backed by the simulated cloud services.

§2.1: COPY loads "from Amazon S3, Amazon DynamoDB, Amazon EMR, or over an
arbitrary SSH connection". This module wires those services into an
engine cluster's pluggable source registry:

* ``s3://bucket/prefix`` — concatenates every matching object's lines, in
  key order (the multi-file parallel-load pattern).
* ``dynamodb://table`` — scans the table, emitting one JSON object per
  item (use ``COPY ... JSON``).
* ``ssh://host/cmd`` — lines from a registered remote command, the
  arbitrary-SSH escape hatch.
* ``emr://cluster/path`` — lines from a registered EMR output, same shape
  as the S3 provider.
"""

from __future__ import annotations

import gzip
import json
from typing import Callable, Iterable

from repro.cloud.dynamodb import SimDynamoDB
from repro.cloud.environment import CloudEnvironment
from repro.cloud.s3 import SimS3
from repro.engine.cluster import Cluster
from repro.errors import CopyError


def s3_source(s3: SimS3) -> Callable[[str], Iterable[str]]:
    """Provider for ``s3://bucket/prefix`` URIs.

    Objects whose key ends in ``.gz`` are gunzipped — COPY's GZIP option
    handled at the source layer, like the real service's fetch path.
    """

    def provide(uri: str) -> Iterable[str]:
        rest = uri.removeprefix("s3://")
        if "/" in rest:
            bucket, prefix = rest.split("/", 1)
        else:
            bucket, prefix = rest, ""
        keys = s3.list_objects(bucket, prefix)
        if not keys:
            raise CopyError(f"no objects under {uri!r}")
        for key in keys:
            data = s3.get_object(bucket, key).data
            if key.endswith(".gz"):
                data = gzip.decompress(data)
            text = data.decode("utf-8")
            for line in text.splitlines():
                yield line

    return provide


def dynamodb_source(dynamodb: SimDynamoDB) -> Callable[[str], Iterable[str]]:
    """Provider for ``dynamodb://table`` URIs (JSON lines)."""

    def provide(uri: str) -> Iterable[str]:
        table_name = uri.removeprefix("dynamodb://").strip("/")
        table = dynamodb.table(table_name)
        for item in table.scan():
            yield json.dumps(item, default=str)

    return provide


class SshCommandRegistry:
    """Registered 'remote commands' for the ssh:// provider."""

    def __init__(self) -> None:
        self._commands: dict[str, Callable[[], Iterable[str]]] = {}

    def register(self, endpoint: str, command: Callable[[], Iterable[str]]) -> None:
        """Map ``host/cmd`` to a line generator."""
        self._commands[endpoint] = command

    def provider(self) -> Callable[[str], Iterable[str]]:
        def provide(uri: str) -> Iterable[str]:
            endpoint = uri.removeprefix("ssh://")
            command = self._commands.get(endpoint)
            if command is None:
                raise CopyError(f"no SSH command registered for {uri!r}")
            return iter(command())

        return provide


def attach_cloud_sources(
    cluster: Cluster,
    env: CloudEnvironment,
    dynamodb: SimDynamoDB | None = None,
    ssh: SshCommandRegistry | None = None,
) -> None:
    """Register every cloud-backed COPY source on an engine cluster."""
    cluster.register_source("s3://", s3_source(env.s3))
    if dynamodb is not None:
        cluster.register_source("dynamodb://", dynamodb_source(dynamodb))
    if ssh is not None:
        cluster.register_source("ssh://", ssh.provider())
