"""CloudEnvironment: one region's worth of simulated AWS services sharing
a clock, plus optional remote regions for disaster recovery."""

from __future__ import annotations

from repro.cloud.cloudtrail import SimCloudTrail
from repro.cloud.cloudwatch import SimCloudWatch
from repro.cloud.dynamodb import SimDynamoDB
from repro.cloud.ec2 import Ec2Config, SimEC2
from repro.cloud.kms import SimKMS
from repro.cloud.s3 import S3Config, SimS3
from repro.cloud.simclock import SimClock
from repro.cloud.sns import SimSNS
from repro.cloud.swf import SimWorkflowService
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.util.rng import DeterministicRng


class CloudEnvironment:
    """The service bundle a control plane runs against."""

    def __init__(
        self,
        region: str = "us-east-1",
        seed: int | str = 0,
        s3_config: S3Config | None = None,
        ec2_config: Ec2Config | None = None,
        clock: SimClock | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.region = region
        self.rng = DeterministicRng(seed)
        self.clock = clock or SimClock()
        #: One injector shared by every service in the region, so a single
        #: FaultPlan drives (and a single log records) the whole timeline.
        self.faults = FaultInjector(
            fault_plan, self.clock, rng=self.rng.child("faults")
        )
        self.s3 = SimS3(
            region, s3_config, self.clock, self.rng.child("s3"),
            injector=self.faults,
        )
        self.ec2 = SimEC2(
            ec2_config, self.clock, self.rng.child("ec2"),
            injector=self.faults,
        )
        self.swf = SimWorkflowService(self.clock, rng=self.rng.child("swf"))
        self.cloudwatch = SimCloudWatch(self.clock)
        self.sns = SimSNS(self.clock)
        self.kms = SimKMS(self.rng.child("kms"))
        self.cloudtrail = SimCloudTrail(self.clock)
        self.dynamodb = SimDynamoDB()
        self._remote_regions: dict[str, "CloudEnvironment"] = {}

    def add_remote_region(self, region: str) -> "CloudEnvironment":
        """Attach a DR region sharing this environment's clock."""
        if region == self.region:
            raise ValueError("remote region must differ from the home region")
        if region not in self._remote_regions:
            remote = CloudEnvironment(
                region=region,
                seed=f"{self.rng._seed_value}/{region}",
                clock=self.clock,
            )
            self._remote_regions[region] = remote
        return self._remote_regions[region]

    def remote_region(self, region: str) -> "CloudEnvironment":
        remote = self._remote_regions.get(region)
        if remote is None:
            raise KeyError(f"remote region {region!r} is not attached")
        return remote

    @property
    def remote_regions(self) -> list[str]:
        return sorted(self._remote_regions)
