"""Simulated CloudWatch: time-stamped metrics with simple aggregation.

The control plane publishes instance and query telemetry here; patch
auto-rollback (§5) reads error/latency series back to decide whether a
deployment regressed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.simclock import SimClock
from repro.util.stats import mean


@dataclass(frozen=True)
class MetricPoint:
    timestamp: float
    value: float


class SimCloudWatch:
    """Metric name (+ dimensions) → time series."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._series: dict[tuple, list[MetricPoint]] = {}

    def bind_clock(self, clock: SimClock) -> None:
        """Swap the time source (e.g. a rebuilt environment's clock).

        Recorded points are retained across the reset: series keep their
        original timestamps, and window aggregation simply measures from
        the new clock's ``now``.
        """
        self._clock = clock

    @staticmethod
    def _key(name: str, dimensions: dict[str, str] | None) -> tuple:
        return (name, tuple(sorted((dimensions or {}).items())))

    def put_metric(
        self, name: str, value: float, dimensions: dict[str, str] | None = None
    ) -> None:
        key = self._key(name, dimensions)
        self._series.setdefault(key, []).append(
            MetricPoint(self._clock.now, float(value))
        )

    def get_series(
        self, name: str, dimensions: dict[str, str] | None = None
    ) -> list[MetricPoint]:
        return list(self._series.get(self._key(name, dimensions), []))

    def average(
        self,
        name: str,
        window_s: float,
        dimensions: dict[str, str] | None = None,
    ) -> float | None:
        """Mean over the trailing window; None when the window is empty."""
        cutoff = self._clock.now - window_s
        points = [
            p.value
            for p in self._series.get(self._key(name, dimensions), [])
            if p.timestamp >= cutoff
        ]
        return mean(points) if points else None

    def total(
        self,
        name: str,
        window_s: float,
        dimensions: dict[str, str] | None = None,
    ) -> float:
        cutoff = self._clock.now - window_s
        return sum(
            p.value
            for p in self._series.get(self._key(name, dimensions), [])
            if p.timestamp >= cutoff
        )
