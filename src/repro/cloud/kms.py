"""Simulated KMS/CloudHSM: key generation and envelope wrapping.

Implements exactly what the engine's key hierarchy (§3.2) needs: generate
data keys, wrap them under a named master key, unwrap them later, and
rotate or revoke masters. "Encryption" here is a keyed XOR stream — the
*hierarchy semantics* (what must be re-encrypted on rotation, what access
is lost on repudiation) are the reproduced behaviour, not the cipher
strength; see DESIGN.md's substitution table.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.errors import KmsError
from repro.util.rng import DeterministicRng

KEY_BYTES = 32


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


def xor_cipher(key: bytes, data: bytes) -> bytes:
    """Symmetric keyed transform (its own inverse)."""
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


@dataclass(frozen=True)
class WrappedKey:
    """A data key encrypted under a master key."""

    master_key_id: str
    master_version: int
    ciphertext: bytes


class SimKMS:
    """Master-key registry with versioned rotation and revocation."""

    def __init__(self, rng: DeterministicRng | None = None):
        self._rng = rng or DeterministicRng("kms")
        self._ids = itertools.count(1)
        #: key id -> (current version, {version: key bytes}, revoked?)
        self._masters: dict[str, tuple[int, dict[int, bytes], bool]] = {}

    def _random_key(self) -> bytes:
        return bytes(self._rng.randrange(256) for _ in range(KEY_BYTES))

    # ---- master keys -------------------------------------------------------

    def create_master_key(self, alias: str | None = None) -> str:
        key_id = alias or f"key-{next(self._ids):06d}"
        if key_id in self._masters:
            raise KmsError(f"master key {key_id!r} already exists")
        self._masters[key_id] = (1, {1: self._random_key()}, False)
        return key_id

    def rotate_master_key(self, key_id: str) -> int:
        """New master version; old versions stay usable for unwrapping
        until revoked, so rotation never requires bulk re-encryption."""
        version, keys, revoked = self._require(key_id)
        new_version = version + 1
        keys[new_version] = self._random_key()
        self._masters[key_id] = (new_version, keys, revoked)
        return new_version

    def revoke_master_key(self, key_id: str) -> None:
        """Repudiation: all wraps under this master become undecryptable."""
        version, keys, _ = self._require(key_id)
        self._masters[key_id] = (version, keys, True)

    def _require(self, key_id: str) -> tuple[int, dict[int, bytes], bool]:
        entry = self._masters.get(key_id)
        if entry is None:
            raise KmsError(f"no such master key {key_id!r}")
        return entry

    # ---- data keys -------------------------------------------------------------

    def generate_data_key(self, master_key_id: str) -> tuple[bytes, WrappedKey]:
        """Return (plaintext key, wrapped key) — envelope encryption."""
        plaintext = self._random_key()
        return plaintext, self.wrap(master_key_id, plaintext)

    def wrap(self, master_key_id: str, plaintext_key: bytes) -> WrappedKey:
        version, keys, revoked = self._require(master_key_id)
        if revoked:
            raise KmsError(f"master key {master_key_id!r} is revoked")
        return WrappedKey(
            master_key_id=master_key_id,
            master_version=version,
            ciphertext=xor_cipher(keys[version], plaintext_key),
        )

    def unwrap(self, wrapped: WrappedKey) -> bytes:
        version, keys, revoked = self._require(wrapped.master_key_id)
        if revoked:
            raise KmsError(
                f"master key {wrapped.master_key_id!r} is revoked"
            )
        master = keys.get(wrapped.master_version)
        if master is None:
            raise KmsError(
                f"master key version {wrapped.master_version} not found"
            )
        return xor_cipher(master, wrapped.ciphertext)

    def rewrap(self, wrapped: WrappedKey) -> WrappedKey:
        """Re-encrypt a wrapped key under the master's current version —
        the cheap operation that makes key rotation O(keys), not O(data)."""
        plaintext = self.unwrap(wrapped)
        return self.wrap(wrapped.master_key_id, plaintext)
