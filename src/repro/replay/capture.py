"""Workload capture: stl_query -> a replayable trace.

Real-world cluster migrations are validated with SimpleReplay: extract
the audit log of what customers actually ran, then re-run it elsewhere.
Here ``stl_query`` *is* the audit log — it already carries per-query
session identity, queue, timing, executor, and a result fingerprint —
so capture is a projection: select the rows, anchor their start times
to the first query (``offset_s``), and group by session.

A captured workload is a value object: JSON round-trippable, sliceable
by session, and independent of the cluster it came from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import ReplayError
from repro.systables.tables import SYSTEM_TABLE_COLUMNS

#: stl_query statements that carry no replayable work.
_SKIPPED_PREFIXES = ("EXPLAIN",)

_SYSTEM_PREFIXES = ("stl_", "stv_", "svl_")


@dataclass(frozen=True)
class CapturedQuery:
    """One statement of the captured workload."""

    query_id: int
    session_id: int
    user_name: str
    queue: str
    text: str
    #: Seconds after the first captured query's start.
    offset_s: float
    elapsed_us: int
    state: str
    executor: str | None
    rows: int
    result_fingerprint: str


@dataclass
class CapturedWorkload:
    """An ordered, session-tagged query trace."""

    queries: list[CapturedQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def sessions(self) -> dict[int, list[CapturedQuery]]:
        """Per-session streams, each in original execution order."""
        out: dict[int, list[CapturedQuery]] = {}
        for query in self.queries:
            out.setdefault(query.session_id, []).append(query)
        return out

    @property
    def duration_s(self) -> float:
        """Span from the first query's start to the last one's start."""
        if not self.queries:
            return 0.0
        return max(q.offset_s for q in self.queries)

    @property
    def read_fraction(self) -> float:
        """Fraction of captured statements that are SELECTs."""
        if not self.queries:
            return 0.0
        reads = sum(
            1
            for q in self.queries
            if q.text.lstrip().upper().startswith("SELECT")
        )
        return reads / len(self.queries)

    def to_json(self) -> str:
        return json.dumps(
            {"queries": [asdict(q) for q in self.queries]}, indent=2
        )

    @classmethod
    def from_json(cls, text: str) -> "CapturedWorkload":
        try:
            payload = json.loads(text)
            queries = [CapturedQuery(**q) for q in payload["queries"]]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ReplayError(f"malformed captured workload: {exc}") from exc
        return cls(queries=queries)


def capture_workload(
    cluster,
    include_failed: bool = False,
    include_system: bool = False,
) -> CapturedWorkload:
    """Extract the replayable workload from *cluster*'s ``stl_query``.

    Skips failed statements (unless *include_failed*), statements over
    system tables (their rows are instance-local telemetry — replaying
    them compares nothing; unless *include_system*), and EXPLAIN.
    """
    systables = cluster.systables
    if systables is None:
        raise ReplayError("cluster has no system tables to capture from")
    columns = [name for name, _ in SYSTEM_TABLE_COLUMNS["stl_query"]]
    col = {name: index for index, name in enumerate(columns)}
    rows = systables.rows("stl_query")
    if not rows:
        return CapturedWorkload()
    base = min(row[col["starttime"]] for row in rows)
    queries: list[CapturedQuery] = []
    for row in rows:
        text = row[col["querytxt"]]
        if row[col["state"]] != "success" and not include_failed:
            continue
        if text.upper().startswith(_SKIPPED_PREFIXES):
            continue
        lowered = text.lower()
        if not include_system and any(
            prefix in lowered for prefix in _SYSTEM_PREFIXES
        ):
            continue
        queries.append(
            CapturedQuery(
                query_id=row[col["query"]],
                session_id=row[col["session_id"]],
                user_name=row[col["user_name"]],
                queue=row[col["queue"]],
                text=text,
                offset_s=row[col["starttime"]] - base,
                elapsed_us=row[col["elapsed_us"]],
                state=row[col["state"]],
                executor=row[col["executor"]],
                rows=row[col["rows"]],
                result_fingerprint=row[col["result_fingerprint"]] or "",
            )
        )
    queries.sort(key=lambda q: (q.offset_s, q.query_id))
    return CapturedWorkload(queries=queries)
