"""Workload replay: re-run a captured trace with its original shape.

Replay reconstructs the captured concurrency, not just the statements:
one server session per captured session, all started on a barrier, each
submitting its queries at the captured start offsets (divided by
*speedup*) so the original interleaving — dashboards overlapping ETL
overlapping ad-hoc — is reproduced against the target cluster. Within a
session, statements stay strictly ordered, as they were on the source.

Correctness checking is fingerprint-based: each replayed SELECT is
hashed the same way capture hashed it
(:func:`repro.util.fingerprint.result_fingerprint`), and the differ
compares pairs where both sides carry a fingerprint. Replaying on the
same executor kind as the capture makes the comparison bit-exact —
executors are deterministic; only *across* executor kinds may results
legally differ (e.g. float aggregation order).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReplayError, ReproError
from repro.replay.capture import CapturedQuery, CapturedWorkload
from repro.server import ClusterServer, ServerConfig
from repro.engine.wlm import QueueConfig
from repro.util.fingerprint import result_fingerprint
from repro.util.stats import percentile


@dataclass(frozen=True)
class ReplayedQuery:
    """One statement's outcome in a replay run."""

    query_id: int
    session_id: int
    text: str
    #: Seconds after replay start at which execution actually began.
    offset_s: float
    elapsed_us: int
    state: str
    error: str
    rows: int
    result_fingerprint: str


@dataclass
class ReplayReport:
    """Everything one replay run produced."""

    speedup: float
    wall_s: float
    queries: list[ReplayedQuery] = field(default_factory=list)
    #: The replay server's :class:`~repro.server.ServerMetrics` captured
    #: just before shutdown — per-queue sheds/timeouts and burst-routing
    #: counters for A/B replays (e.g. burst on vs. off).
    metrics: object = None

    @property
    def error_count(self) -> int:
        return sum(1 for q in self.queries if q.state == "error")

    def by_query_id(self) -> dict[int, ReplayedQuery]:
        return {q.query_id: q for q in self.queries}


@dataclass(frozen=True)
class LatencyComparison:
    """Per-query latency distribution, baseline vs replay."""

    queries: int
    baseline_p50_ms: float
    baseline_p99_ms: float
    replay_p50_ms: float
    replay_p99_ms: float

    @property
    def p50_ratio(self) -> float:
        if self.baseline_p50_ms == 0.0:
            return 0.0
        return self.replay_p50_ms / self.baseline_p50_ms


@dataclass
class ReplayDiff:
    """Result and latency comparison of a replay against its baseline."""

    #: Query pairs where both sides carried a fingerprint.
    compared: int = 0
    #: (query_id, baseline fingerprint, replay fingerprint) per mismatch.
    mismatches: list[tuple[int, str, str]] = field(default_factory=list)
    #: Queries that succeeded on the baseline but errored in the replay.
    new_errors: list[int] = field(default_factory=list)
    #: Baseline queries the replay never ran.
    missing: list[int] = field(default_factory=list)
    #: Pairs skipped because a side had no fingerprint (non-SELECT,
    #: oversized result, or an errored baseline row).
    uncomparable: int = 0
    latency: LatencyComparison | None = None

    @property
    def results_identical(self) -> bool:
        """Every comparable pair matched and nothing newly failed."""
        return not self.mismatches and not self.new_errors and not self.missing


def replay(
    workload: CapturedWorkload,
    cluster,
    speedup: float = 1.0,
    executor: str | None = None,
    config: ServerConfig | None = None,
    session_kwargs: dict | None = None,
    on_server=None,
) -> ReplayReport:
    """Re-run *workload* against *cluster* at ``speedup`` x pacing.

    Each captured session becomes one concurrent server session opened
    under the captured user and queue. ``executor`` forces one executor
    kind for every query; None replays each query on the executor that
    ran it originally (the bit-exact choice). ``session_kwargs`` go to
    :meth:`Cluster.connect` (e.g. ``pool_mode="thread"`` when forcing
    the parallel executor from replay threads). ``on_server`` is called
    with the freshly built :class:`ClusterServer` before any session
    opens — the hook point for attaching a burst router or other
    server-level configuration. Statement errors are recorded per
    query, never raised — a replay always completes.
    """
    if speedup <= 0:
        raise ReplayError(f"speedup must be positive, got {speedup}")
    by_session = workload.sessions()
    if not by_session:
        return ReplayReport(speedup=speedup, wall_s=0.0)
    if config is None:
        queue_names = sorted({q.queue for q in workload.queries}) or ["default"]
        config = ServerConfig(
            queues=tuple(
                QueueConfig(
                    name,
                    slots=5,
                    memory_fraction=1.0 / len(queue_names),
                )
                for name in queue_names
            )
        )
    server = ClusterServer(cluster, config)
    if on_server is not None:
        on_server(server)
    results: list[ReplayedQuery] = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(len(by_session) + 1)

    def run_session(stream: list[CapturedQuery]) -> None:
        first = stream[0]
        handle = server.open_session(
            user_name=first.user_name,
            queue=first.queue,
            executor=executor or first.executor or "compiled",
            **(session_kwargs or {}),
        )
        try:
            barrier.wait()
            start = time.perf_counter()
            for captured in stream:
                target = captured.offset_s / speedup
                delay = target - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
                if executor is None and captured.executor:
                    try:
                        handle.session.set_executor(captured.executor)
                    except ValueError:
                        pass  # captured on an executor this build lacks
                began = time.perf_counter() - start
                t0 = time.perf_counter()
                try:
                    result = handle.execute(captured.text)
                except ReproError as exc:
                    outcome = ReplayedQuery(
                        query_id=captured.query_id,
                        session_id=captured.session_id,
                        text=captured.text,
                        offset_s=began,
                        elapsed_us=int(
                            (time.perf_counter() - t0) * 1_000_000
                        ),
                        state="error",
                        error=str(exc),
                        rows=0,
                        result_fingerprint="",
                    )
                else:
                    fingerprint = ""
                    if result.command == "SELECT":
                        fingerprint = result_fingerprint(
                            result.columns, result.rows
                        )
                    outcome = ReplayedQuery(
                        query_id=captured.query_id,
                        session_id=captured.session_id,
                        text=captured.text,
                        offset_s=began,
                        elapsed_us=int(
                            (time.perf_counter() - t0) * 1_000_000
                        ),
                        state="success",
                        error="",
                        rows=result.rowcount,
                        result_fingerprint=fingerprint,
                    )
                with results_lock:
                    results.append(outcome)
        finally:
            handle.close()

    threads = [
        threading.Thread(
            target=run_session,
            args=(stream,),
            name=f"replay-session-{session_id}",
            daemon=True,
        )
        for session_id, stream in sorted(by_session.items())
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    metrics = server.metrics()
    server.shutdown()
    results.sort(key=lambda q: (q.offset_s, q.query_id))
    return ReplayReport(
        speedup=speedup, wall_s=wall, queries=results, metrics=metrics
    )


def _latency(
    pairs: list[tuple[int, int]]
) -> LatencyComparison | None:
    """Latency distributions from (baseline_us, replay_us) pairs."""
    if not pairs:
        return None
    baseline = [b / 1000.0 for b, _ in pairs]
    replayed = [r / 1000.0 for _, r in pairs]
    return LatencyComparison(
        queries=len(pairs),
        baseline_p50_ms=percentile(baseline, 50),
        baseline_p99_ms=percentile(baseline, 99),
        replay_p50_ms=percentile(replayed, 50),
        replay_p99_ms=percentile(replayed, 99),
    )


def diff_capture(
    workload: CapturedWorkload, report: ReplayReport
) -> ReplayDiff:
    """Compare a replay against the capture it re-ran."""
    replayed = report.by_query_id()
    diff = ReplayDiff()
    latency_pairs: list[tuple[int, int]] = []
    for captured in workload.queries:
        after = replayed.get(captured.query_id)
        if after is None:
            diff.missing.append(captured.query_id)
            continue
        if captured.state == "success" and after.state == "error":
            diff.new_errors.append(captured.query_id)
            continue
        if after.state == "success":
            latency_pairs.append((captured.elapsed_us, after.elapsed_us))
        if not captured.result_fingerprint or not after.result_fingerprint:
            diff.uncomparable += 1
            continue
        diff.compared += 1
        if captured.result_fingerprint != after.result_fingerprint:
            diff.mismatches.append(
                (
                    captured.query_id,
                    captured.result_fingerprint,
                    after.result_fingerprint,
                )
            )
    diff.latency = _latency(latency_pairs)
    return diff


def diff_reports(baseline: ReplayReport, candidate: ReplayReport) -> ReplayDiff:
    """Compare two replays of the same capture (e.g. two cluster configs)."""
    after_by_id = candidate.by_query_id()
    diff = ReplayDiff()
    latency_pairs: list[tuple[int, int]] = []
    for before in baseline.queries:
        after = after_by_id.get(before.query_id)
        if after is None:
            diff.missing.append(before.query_id)
            continue
        if before.state == "success" and after.state == "error":
            diff.new_errors.append(before.query_id)
            continue
        if after.state == "success":
            latency_pairs.append((before.elapsed_us, after.elapsed_us))
        if not before.result_fingerprint or not after.result_fingerprint:
            diff.uncomparable += 1
            continue
        diff.compared += 1
        if before.result_fingerprint != after.result_fingerprint:
            diff.mismatches.append(
                (
                    before.query_id,
                    before.result_fingerprint,
                    after.result_fingerprint,
                )
            )
    diff.latency = _latency(latency_pairs)
    return diff
