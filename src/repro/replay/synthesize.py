"""Workload synthesis: Redbench-style mixed fleets from trace statistics.

Captured workloads are the gold standard but you rarely have one for
the scenario you want to size. The synthesizer manufactures a
:class:`~repro.replay.capture.CapturedWorkload` with the statistical
shape of a real fleet — three canonical client populations, mirroring
the paper's workload mix:

- **Dashboard readers**: a small pool of repeated aggregate queries
  with short think times; high repeat rate makes them result-cache
  friendly, exactly the traffic that motivated the leader-side cache.
- **Ad-hoc analysts**: parameterized range scans whose literals vary
  per query, so almost every one is a cache miss.
- **ETL writers**: batched INSERTs with occasional DELETEs, sparse in
  time, constantly moving table epochs under the readers.

All randomness flows from one :class:`~repro.util.rng.DeterministicRng`
through per-session child streams, so a (profile, tables, seed) triple
always yields the identical workload — and adding a session never
perturbs the others' query streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReplayError
from repro.replay.capture import CapturedQuery, CapturedWorkload
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class TableSpec:
    """The table surface synthetic queries run against.

    ``key_column`` filters and groups (integer-valued in
    [key_low, key_high)); ``numeric_column`` aggregates. ETL INSERTs
    name exactly these two columns, so the real table may have more —
    unnamed columns load NULL.
    """

    name: str
    key_column: str
    numeric_column: str
    key_low: int = 0
    key_high: int = 1000


@dataclass(frozen=True)
class FleetProfile:
    """How many of each client population, and how fast they think."""

    dashboards: int = 4
    adhoc: int = 2
    etl: int = 1
    #: Synthetic trace length (offsets never exceed it).
    duration_s: float = 1.0
    #: Mean think time between a population's queries, seconds.
    dashboard_think_s: float = 0.01
    adhoc_think_s: float = 0.03
    etl_think_s: float = 0.08
    #: Rows per ETL INSERT batch.
    etl_batch_rows: int = 20

    @property
    def sessions(self) -> int:
        return self.dashboards + self.adhoc + self.etl


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace, for synthesize-alike workloads."""

    queries: int
    sessions: int
    duration_s: float
    read_fraction: float
    mean_gap_s: float

    @classmethod
    def from_workload(cls, workload: CapturedWorkload) -> "TraceStats":
        streams = workload.sessions()
        gaps: list[float] = []
        for stream in streams.values():
            offsets = sorted(q.offset_s for q in stream)
            gaps.extend(
                b - a for a, b in zip(offsets, offsets[1:])
            )
        return cls(
            queries=len(workload),
            sessions=len(streams),
            duration_s=workload.duration_s,
            read_fraction=workload.read_fraction,
            mean_gap_s=(sum(gaps) / len(gaps)) if gaps else 0.0,
        )


def _dashboard_queries(table: TableSpec) -> list[str]:
    """The repeated-template pool one dashboard cycles through."""
    return [
        f"SELECT count(*) FROM {table.name}",
        f"SELECT sum({table.numeric_column}) FROM {table.name}",
        (
            f"SELECT min({table.key_column}), max({table.key_column}) "
            f"FROM {table.name}"
        ),
        (
            f"SELECT count(*), sum({table.numeric_column}) "
            f"FROM {table.name} WHERE {table.key_column} >= "
            f"{(table.key_low + table.key_high) // 2}"
        ),
    ]


def _adhoc_query(table: TableSpec, rng: DeterministicRng) -> str:
    low = rng.randint(table.key_low, max(table.key_low, table.key_high - 2))
    high = rng.randint(low + 1, table.key_high)
    return (
        f"SELECT count(*), sum({table.numeric_column}) FROM {table.name} "
        f"WHERE {table.key_column} >= {low} AND {table.key_column} < {high}"
    )


def _etl_statement(table: TableSpec, rng: DeterministicRng, batch: int) -> str:
    if rng.random() < 0.15:
        victim = rng.randint(table.key_low, table.key_high - 1)
        return f"DELETE FROM {table.name} WHERE {table.key_column} = {victim}"
    values = ", ".join(
        f"({rng.randint(table.key_low, table.key_high - 1)}, "
        f"{rng.randint(1, 1000)})"
        for _ in range(batch)
    )
    return (
        f"INSERT INTO {table.name} "
        f"({table.key_column}, {table.numeric_column}) VALUES {values}"
    )


def synthesize(
    profile: FleetProfile,
    tables: list[TableSpec],
    seed: int | str = 0,
    executor: str = "compiled",
) -> CapturedWorkload:
    """A deterministic mixed-fleet workload over *tables*.

    The result replays like any captured workload; its fingerprints are
    empty (nothing has executed yet), so the usual pattern is replay
    once to baseline, then :func:`~repro.replay.replay.diff_reports`
    against replays on other configurations.
    """
    if not tables:
        raise ReplayError("synthesize needs at least one TableSpec")
    root = DeterministicRng(seed)
    queries: list[CapturedQuery] = []
    session_id = 0

    def add_session(kind: str, index: int, think_s: float, make) -> None:
        nonlocal session_id
        session_id += 1
        rng = root.child(f"{kind}-{index}")
        offset = rng.exponential(1.0 / think_s)
        position = 0
        while offset < profile.duration_s:
            queries.append(
                CapturedQuery(
                    query_id=0,  # assigned after the global sort
                    session_id=session_id,
                    user_name=f"{kind}-{index}",
                    queue="default",
                    text=make(rng, position),
                    offset_s=offset,
                    elapsed_us=0,
                    state="success",
                    executor=executor,
                    rows=0,
                    result_fingerprint="",
                )
            )
            position += 1
            offset += rng.exponential(1.0 / think_s)

    for i in range(profile.dashboards):
        table = tables[i % len(tables)]
        pool = _dashboard_queries(table)
        add_session(
            "dashboard",
            i,
            profile.dashboard_think_s,
            lambda rng, pos, pool=pool: pool[pos % len(pool)],
        )
    for i in range(profile.adhoc):
        table = tables[i % len(tables)]
        add_session(
            "adhoc",
            i,
            profile.adhoc_think_s,
            lambda rng, pos, table=table: _adhoc_query(table, rng),
        )
    for i in range(profile.etl):
        table = tables[i % len(tables)]
        add_session(
            "etl",
            i,
            profile.etl_think_s,
            lambda rng, pos, table=table: _etl_statement(
                table, rng, profile.etl_batch_rows
            ),
        )

    queries.sort(key=lambda q: (q.offset_s, q.session_id))
    numbered = [
        CapturedQuery(
            query_id=index + 1,
            session_id=q.session_id,
            user_name=q.user_name,
            queue=q.queue,
            text=q.text,
            offset_s=q.offset_s,
            elapsed_us=q.elapsed_us,
            state=q.state,
            executor=q.executor,
            rows=q.rows,
            result_fingerprint=q.result_fingerprint,
        )
        for index, q in enumerate(queries)
    ]
    return CapturedWorkload(queries=numbered)


def synthesize_like(
    stats: TraceStats,
    tables: list[TableSpec],
    seed: int | str = 0,
) -> CapturedWorkload:
    """A synthetic fleet matching a real trace's summary statistics.

    Session count, duration, read/write mix, and think-time scale come
    from *stats*; the query text comes from the synthesizer's canonical
    populations. Useful for scaling experiments: capture a small real
    workload, then synthesize a like-shaped one at 10x the sessions.
    """
    sessions = max(1, stats.sessions)
    readers = max(1, round(sessions * stats.read_fraction)) if (
        stats.read_fraction > 0
    ) else 0
    writers = max(0, sessions - readers)
    if readers == 0 and writers == 0:
        readers = 1
    # Readers split dashboards vs ad-hoc 2:1, the typical fleet shape.
    dashboards = max(1, (readers * 2) // 3) if readers else 0
    adhoc = readers - dashboards
    think = stats.mean_gap_s if stats.mean_gap_s > 0 else 0.02
    profile = FleetProfile(
        dashboards=dashboards,
        adhoc=adhoc,
        etl=writers,
        duration_s=stats.duration_s if stats.duration_s > 0 else 1.0,
        dashboard_think_s=think,
        adhoc_think_s=think * 2,
        etl_think_s=think * 4,
    )
    return synthesize(profile, tables, seed=seed)
