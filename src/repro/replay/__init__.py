"""Workload capture, replay, and synthesis.

The SimpleReplay-style tool for the repro engine: extract a captured
multi-session workload from ``stl_query``, replay it against any
cluster configuration at original or accelerated pacing with the
original session interleaving, and diff results and latency
distributions. The synthesizer generates mixed fleets (ETL writers,
dashboard readers, ad-hoc analysts) from trace statistics with a
seeded RNG.
"""

from repro.replay.capture import (
    CapturedQuery,
    CapturedWorkload,
    capture_workload,
)
from repro.replay.replay import (
    LatencyComparison,
    ReplayDiff,
    ReplayReport,
    ReplayedQuery,
    diff_capture,
    diff_reports,
    replay,
)
from repro.replay.synthesize import (
    FleetProfile,
    TableSpec,
    TraceStats,
    synthesize,
    synthesize_like,
)

__all__ = [
    "CapturedQuery",
    "CapturedWorkload",
    "capture_workload",
    "LatencyComparison",
    "ReplayDiff",
    "ReplayReport",
    "ReplayedQuery",
    "diff_capture",
    "diff_reports",
    "replay",
    "FleetProfile",
    "TableSpec",
    "TraceStats",
    "synthesize",
    "synthesize_like",
]
