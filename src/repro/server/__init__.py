"""Concurrent multi-session server frontend.

The paper's cluster serves "hundreds of concurrent clients" through the
leader node; this package is that frontend for the repro engine — many
client sessions multiplexed over one cluster, each with its own worker
thread, bounded submission queue, and live WLM admission.
"""

from repro.server.server import (
    ClusterServer,
    ServerConfig,
    ServerMetrics,
    ServerSession,
    SlotGate,
)

__all__ = [
    "ClusterServer",
    "ServerConfig",
    "ServerMetrics",
    "ServerSession",
    "SlotGate",
]
