"""Concurrent multi-session server frontend.

The paper's cluster serves "hundreds of concurrent clients" through the
leader node; this package is that frontend for the repro engine — many
client sessions multiplexed over one cluster, each with its own worker
thread, bounded submission queue, and live WLM admission. Under
sustained queue pressure, a :class:`~repro.server.burst.BurstRouter`
sends read-only queries to a concurrency-scaling burst cluster restored
from the latest snapshot.
"""

from repro.server.burst import BurstCluster, BurstConfig, BurstRouter
from repro.server.server import (
    ClusterServer,
    ServerConfig,
    ServerMetrics,
    ServerSession,
    SlotGate,
)

__all__ = [
    "BurstCluster",
    "BurstConfig",
    "BurstRouter",
    "ClusterServer",
    "ServerConfig",
    "ServerMetrics",
    "ServerSession",
    "SlotGate",
]
