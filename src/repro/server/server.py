"""The concurrent session server: thread-per-session over one cluster.

"Amazon Redshift is architected to run on clusters of hundreds of nodes
serving hundreds of concurrent clients" — the serving half of that claim
is what this module reproduces. A :class:`ClusterServer` fronts one
:class:`~repro.engine.cluster.Cluster` with many concurrently-executing
client sessions:

- **Thread per session.** Each :class:`ServerSession` owns one engine
  :class:`~repro.engine.session.Session` (its transaction state, SET
  parameters, and executor choice are per-connection, exactly as over
  ODBC/JDBC) and one worker thread that drains a *bounded* submission
  queue. Statements of one session execute in submission order;
  statements of different sessions interleave freely.
- **Live WLM admission.** Every session is wired to its queue's
  :class:`SlotGate` — the live counterpart of the discrete-event
  :class:`~repro.engine.wlm.WorkloadManager`. A gate holds real
  semaphore slots: queries block for a slot, queue-depth overload sheds
  (:class:`~repro.errors.AdmissionShedError`), and waits past the
  queue's admission timeout fail
  (:class:`~repro.errors.AdmissionTimeoutError`), each recorded into
  ``stl_wlm_rule_action``. Result-cache hits bypass the gate entirely,
  as in real Redshift.
- **Backpressure at the connection.** A full submission queue refuses
  work (:class:`~repro.errors.ServerOverloadError`) instead of
  buffering without bound.
- **Observability.** Live sessions surface in ``stv_sessions``;
  connect/disconnect events land in ``stl_connection_log``; and
  :meth:`ClusterServer.metrics` reports per-queue QPS and p50/p99
  latency from the same accounting.

Isolation comes from the engine, not the server: each statement runs
inside an MVCC snapshot from the cluster's
:class:`~repro.engine.transactions.TransactionManager`, so concurrent
readers never observe a writer's partial commit.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from queue import Empty, Full, Queue

from repro.engine.wlm import AdmissionGate, QueueConfig
from repro.errors import (
    AdmissionShedError,
    AdmissionTimeoutError,
    ServerError,
    ServerOverloadError,
    SessionClosedError,
)
from repro.util.stats import percentile

#: Sentinel telling a session worker to exit its loop.
_CLOSE = object()


class SlotGate(AdmissionGate):
    """Live admission for one WLM queue: real slots, real waiting.

    The base :class:`AdmissionGate` only counts; this subclass makes
    admission *binding* for concurrent sessions. ``admit`` blocks on a
    semaphore holding the queue's configured slot count, sheds on
    arrival when too many queries are already waiting, and gives up
    after the queue's admission timeout — the same three outcomes the
    offline simulator models, now enforced at execution time. Sessions
    of the same queue share one gate; a session's statement may admit
    more than once (INSERT ... SELECT admits its source query), so held
    slots are tracked per thread and released together when the
    statement finishes.
    """

    def __init__(self, config: QueueConfig, systables=None):
        super().__init__(queue=config.name)
        self.config = config
        self._systables = systables
        self._slots = threading.Semaphore(config.slots)
        self._lock = threading.Lock()
        self._held = threading.local()
        #: Queries currently blocked waiting for a slot.
        self.waiting = 0
        self.sheds = 0
        self.timeouts = 0

    def admit(self, label: str = "") -> None:
        config = self.config
        with self._lock:
            if (
                config.max_queue_depth is not None
                and self.waiting >= config.max_queue_depth
            ):
                self.sheds += 1
                self._record_action("shed", label, 0.0)
                raise AdmissionShedError(config.name, self.waiting)
            self.waiting += 1
        try:
            acquired = self._slots.acquire(
                timeout=config.admission_timeout_s
            )
        finally:
            with self._lock:
                self.waiting -= 1
        if not acquired:
            with self._lock:
                self.timeouts += 1
            self._record_action(
                "timeout", label, config.admission_timeout_s or 0.0
            )
            raise AdmissionTimeoutError(
                config.name, config.admission_timeout_s or 0.0
            )
        self._held.count = getattr(self._held, "count", 0) + 1
        super().admit(label)

    def release_held(self) -> None:
        """Release every slot the calling thread's statement acquired."""
        count = getattr(self._held, "count", 0)
        self._held.count = 0
        for _ in range(count):
            self._slots.release()

    def _record_action(self, action: str, label: str, wait_s: float) -> None:
        systables = self._systables
        if systables is None:
            return
        systables.store.append(
            "stl_wlm_rule_action",
            (systables.now, self.config.name, action, label[:128], wait_s),
        )


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide knobs."""

    #: WLM queues the server enforces live. Default mirrors Redshift's
    #: out-of-the-box single queue.
    queues: tuple[QueueConfig, ...] = (
        QueueConfig("default", slots=5, memory_fraction=1.0),
    )
    #: Per-session submission queue bound; a full queue refuses work.
    max_pending_per_session: int = 32


@dataclass
class ServerMetrics:
    """Aggregate serving statistics since the server started."""

    elapsed_s: float
    queries: int
    errors: int
    qps: float
    p50_ms: float
    p99_ms: float
    #: queue name -> queries admitted / bypassed (result-cache hits).
    admissions: dict[str, int] = field(default_factory=dict)
    bypasses: dict[str, int] = field(default_factory=dict)
    sheds: dict[str, int] = field(default_factory=dict)
    timeouts: dict[str, int] = field(default_factory=dict)
    #: Concurrency-scaling counters (routed/fallbacks/stale_rejects/
    #: provisions/provision_failures/retirements); empty when no
    #: burst router is attached.
    burst: dict[str, int] = field(default_factory=dict)


class ServerSession:
    """One client connection: an engine session plus its worker thread.

    Obtained from :meth:`ClusterServer.open_session`; not constructed
    directly. ``submit`` enqueues a statement and returns a
    :class:`~concurrent.futures.Future`; ``execute`` is the blocking
    convenience. Statement errors travel through the future — the
    worker thread never dies on a query failure.
    """

    def __init__(self, server: "ClusterServer", session, gate: SlotGate):
        self._server = server
        self.session = session
        self.session_id = session.session_id
        self.user_name = session.user_name
        self.queue_name = session.queue_name
        self._gate = gate
        self._pending: Queue = Queue(
            maxsize=server.config.max_pending_per_session
        )
        self._lock = threading.Lock()
        self._closed = False
        self.state = "idle"
        self.connected_at = server.now()
        self.queries = 0
        self.errors = 0
        self.latencies_us: list[int] = []
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-session-{self.session_id}",
            daemon=True,
        )
        self._thread.start()

    # ---- client API ------------------------------------------------------

    def submit(self, sql: str) -> Future:
        """Enqueue one statement; resolves to its QueryResult."""
        if self._closed:
            raise SessionClosedError(self.session_id)
        future: Future = Future()
        try:
            self._pending.put_nowait((future, sql))
        except Full:
            raise ServerOverloadError(
                self.session_id, self._pending.qsize()
            ) from None
        return future

    def execute(self, sql: str, timeout: float | None = None):
        """Submit and wait; raises what the statement raised."""
        return self.submit(sql).result(timeout=timeout)

    @property
    def pending(self) -> int:
        return self._pending.qsize()

    def close(self, timeout: float | None = 30.0) -> None:
        """Finish queued statements, stop the worker, log the disconnect."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pending.put((None, _CLOSE))
        self._thread.join(timeout=timeout)
        self.state = "closed"
        self._server._on_session_closed(self)

    # ---- worker ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            future, sql = self._pending.get()
            if sql is _CLOSE:
                break
            if not future.set_running_or_notify_cancel():
                continue
            self.state = "busy"
            t0 = time.perf_counter()
            try:
                router = self._server.burst_router
                if router is not None:
                    result = router.execute(self, sql)
                else:
                    result = self.session.execute(sql)
            except BaseException as exc:  # noqa: BLE001 — ferried to the client
                with self._lock:
                    self.errors += 1
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                # A shed/failed statement must not strand its slots.
                self._gate.release_held()
                elapsed_us = int((time.perf_counter() - t0) * 1_000_000)
                with self._lock:
                    self.queries += 1
                    self.latencies_us.append(elapsed_us)
                self.state = "idle"


class ClusterServer:
    """Many concurrent client sessions multiplexed over one cluster."""

    def __init__(self, cluster, config: ServerConfig | None = None):
        self.cluster = cluster
        self.config = config or ServerConfig()
        self._gates = {
            q.name: SlotGate(q, cluster.systables)
            for q in self.config.queues
        }
        self._sessions: dict[int, ServerSession] = {}
        #: Latency samples of already-closed sessions (metrics keep
        #: counting after churn).
        self._closed_latencies: list[int] = []
        self._closed_queries = 0
        self._closed_errors = 0
        self._lock = threading.Lock()
        self._shutdown = False
        #: Concurrency-scaling router (:class:`repro.server.burst.BurstRouter`);
        #: attached by the control plane's ``enable_concurrency_scaling``.
        #: None routes everything to the main cluster.
        self.burst_router = None
        self.started_at = self.now()
        self._started_perf = time.perf_counter()
        cluster.server = self

    def now(self) -> float:
        systables = self.cluster.systables
        return systables.now if systables is not None else time.time()

    # ---- session lifecycle ----------------------------------------------

    def open_session(
        self,
        user_name: str = "",
        queue: str = "default",
        executor: str = "compiled",
        **session_kwargs,
    ) -> ServerSession:
        """Open one client connection on *queue*.

        Extra keyword arguments go to :meth:`Cluster.connect`
        (``parallelism``, ``pool_mode``, ``memory_limit``).
        """
        with self._lock:
            if self._shutdown:
                raise ServerError("server is shut down")
            gate = self._gates.get(queue)
            if gate is None:
                raise ServerError(
                    f"no WLM queue {queue!r}; defined: {sorted(self._gates)}"
                )
        session = self.cluster.connect(
            executor=executor,
            user_name=user_name,
            queue=queue,
            **session_kwargs,
        )
        session.wlm_gate = gate
        handle = ServerSession(self, session, gate)
        with self._lock:
            self._sessions[handle.session_id] = handle
        self._log_connection("connect", handle)
        return handle

    def _on_session_closed(self, handle: ServerSession) -> None:
        with self._lock:
            self._sessions.pop(handle.session_id, None)
            self._closed_latencies.extend(handle.latencies_us)
            self._closed_queries += handle.queries
            self._closed_errors += handle.errors
        self._log_connection("disconnect", handle)

    def _log_connection(self, event: str, handle: ServerSession) -> None:
        systables = self.cluster.systables
        if systables is not None:
            systables.record_connection(
                event,
                handle.session_id,
                handle.user_name,
                handle.queue_name,
                detail=f"queries={handle.queries} errors={handle.errors}",
            )

    # ---- convenience -----------------------------------------------------

    def execute(self, sql: str, **open_kwargs):
        """One-shot: open a session, run *sql*, close."""
        handle = self.open_session(**open_kwargs)
        try:
            return handle.execute(sql)
        finally:
            handle.close()

    # ---- drain / shutdown ------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every session is idle with an empty queue."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                handles = list(self._sessions.values())
            if all(h.pending == 0 and h.state == "idle" for h in handles):
                return True
            time.sleep(0.005)
        return False

    def shutdown(self, timeout: float = 30.0) -> None:
        """Close every session (finishing queued work) and detach."""
        with self._lock:
            self._shutdown = True
            handles = list(self._sessions.values())
        for handle in handles:
            handle.close(timeout=timeout)
        router = self.burst_router
        if router is not None:
            router.shutdown()
        if self.cluster.server is self:
            self.cluster.server = None

    # ---- observability ---------------------------------------------------

    def session_rows(self) -> list[tuple]:
        """Rows for the ``stv_sessions`` system table."""
        with self._lock:
            handles = list(self._sessions.values())
        return [
            (
                h.session_id,
                h.user_name,
                h.queue_name,
                h.state,
                h.connected_at,
                h.queries,
                h.errors,
                h.pending,
            )
            for h in handles
        ]

    def burst_rows(self) -> list[tuple]:
        """Rows for the ``stv_burst_clusters`` system table."""
        router = self.burst_router
        if router is None:
            return []
        return router.rows()

    def metrics(self) -> ServerMetrics:
        """QPS and latency percentiles since the server started."""
        with self._lock:
            latencies = list(self._closed_latencies)
            queries = self._closed_queries
            errors = self._closed_errors
            handles = list(self._sessions.values())
        for h in handles:
            with h._lock:
                latencies.extend(h.latencies_us)
                queries += h.queries
                errors += h.errors
        elapsed = max(1e-9, time.perf_counter() - self._started_perf)
        return ServerMetrics(
            elapsed_s=elapsed,
            queries=queries,
            errors=errors,
            qps=queries / elapsed,
            p50_ms=(
                percentile(latencies, 50) / 1000.0 if latencies else 0.0
            ),
            p99_ms=(
                percentile(latencies, 99) / 1000.0 if latencies else 0.0
            ),
            admissions={
                name: gate.admissions for name, gate in self._gates.items()
            },
            bypasses={
                name: gate.bypasses for name, gate in self._gates.items()
            },
            sheds={name: gate.sheds for name, gate in self._gates.items()},
            timeouts={
                name: gate.timeouts for name, gate in self._gates.items()
            },
            burst=(
                self.burst_router.counters()
                if self.burst_router is not None
                else {}
            ),
        )
