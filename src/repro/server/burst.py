"""Concurrency-scaling burst clusters: WLM overflow routed to a clone.

The paper's managed-service argument (§3) is that elasticity is the
*service's* job: when a warehouse saturates, the right answer is more
compute attached transparently, not queries shed at the gate. This
module is the serving half of that story. When a WLM queue's waiting
depth stays above a threshold, the control plane restores a **burst
cluster** from the latest S3 snapshot (PR 1's restore machinery) and
the :class:`BurstRouter` — a layer above :class:`~repro.server.server.SlotGate`
— starts sending *read-only* queries there instead of letting them
queue on main:

- **Eligibility.** Only a plain ``SELECT`` qualifies: outside any
  explicit transaction (a transaction's reads must see its own writes,
  which only exist on main) and touching no system tables (``stv_*``
  state lives per cluster; the burst clone's would be wrong).
- **Freshness.** The snapshot manifest captures every table's mutation
  epoch at backup time. A query routes only while *all* of its scanned
  tables' live epochs still equal the captured ones — the moment a
  table mutates on main, queries over it stay on main (counted as
  ``stale_rejects``). This is the same invalidation discipline the
  result cache uses, and it makes burst results bit-identical to main
  by construction.
- **Fallback.** The burst cluster deliberately runs without recovery
  handlers: an injected node crash or storage fault mid-query
  propagates out, the router retires the broken burst and re-executes
  the statement on main. SELECTs are idempotent, so the retry can
  neither lose nor double-execute work.
- **Retirement.** After ``burst_idle_timeout_s`` with no routed
  queries the cluster is handed back to the control plane's retire
  hook and its EC2 instances released.

The router never imports the control plane; it is constructed with
``provision``/``retire`` callables (see
``RedshiftService.enable_concurrency_scaling``), keeping the dependency
direction control plane → server.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    BlockCorruptionError,
    CloudError,
    DiskFailureError,
    DiskMediaError,
    NodeFailureError,
    S3TransientError,
    WorkerCrashError,
)
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage import epoch
from repro.util.fingerprint import result_fingerprint

#: Failures that mean the burst *infrastructure* is unhealthy (retire
#: it), as opposed to a query error that would reproduce on main.
_INFRA_ERRORS = (
    NodeFailureError,
    BlockCorruptionError,
    DiskMediaError,
    DiskFailureError,
    WorkerCrashError,
    S3TransientError,
    CloudError,
)


@dataclass(frozen=True)
class BurstConfig:
    """Knobs governing when a burst cluster appears and disappears."""

    #: The WLM queue whose pressure triggers scaling; only sessions on
    #: this queue route to the burst cluster.
    queue: str = "default"
    #: Provision once this many queries are blocked waiting for a slot.
    burst_queue_depth_threshold: int = 4
    #: The depth must hold for this long (server clock) before
    #: provisioning; 0 scales on the first crossing.
    burst_sustain_s: float = 0.0
    #: Retire the burst cluster after this long without a routed query.
    burst_idle_timeout_s: float = 300.0
    #: After a failed provision (S3 outage mid-restore, no EC2
    #: capacity), don't retry before this much simulated time passes.
    provision_cooldown_s: float = 60.0

    def __post_init__(self):
        if self.burst_queue_depth_threshold < 1:
            raise ValueError(
                "burst_queue_depth_threshold must be >= 1, got "
                f"{self.burst_queue_depth_threshold}"
            )
        if self.burst_idle_timeout_s < 0:
            raise ValueError(
                f"burst_idle_timeout_s must be >= 0, got "
                f"{self.burst_idle_timeout_s}"
            )


@dataclass
class BurstCluster:
    """One provisioned burst cluster and its routing counters."""

    cluster_id: str
    #: The restored engine :class:`~repro.engine.cluster.Cluster`.
    cluster: object
    snapshot_id: str
    #: table name -> mutation epoch captured when the snapshot was
    #: taken; the router's freshness oracle.
    snapshot_epochs: dict[str, int]
    provisioned_at: float
    state: str = "active"
    last_routed_at: float = 0.0
    routed_queries: int = 0
    fallbacks: int = 0
    stale_rejects: int = 0

    def __post_init__(self):
        if not self.last_routed_at:
            self.last_routed_at = self.provisioned_at


def referenced_tables(statement: ast.SelectStatement) -> tuple[str, ...]:
    """Every table name a SELECT references, CTE names excluded.

    Walks the whole AST generically (every node is a dataclass), so
    table references inside joins, set operations, scalar/IN subqueries
    and CTE bodies are all collected. CTE names shadow real tables for
    the query that defines them, so they are dropped from the result.
    """
    names: set[str] = set()
    cte_names: set[str] = set()

    def walk(node) -> None:
        if isinstance(node, ast.TableRef):
            names.add(node.name)
            return
        if isinstance(node, ast.CommonTableExpr):
            cte_names.add(node.name)
            walk(node.query)
            return
        if dataclasses.is_dataclass(node):
            for f in dataclasses.fields(node):
                walk(getattr(node, f.name))
        elif isinstance(node, (list, tuple)):
            for item in node:
                walk(item)

    walk(statement)
    return tuple(sorted(names - cte_names))


class BurstRouter:
    """Routes eligible read-only statements to a burst cluster.

    Sits between :class:`~repro.server.server.ServerSession` workers and
    their engine sessions: the worker calls :meth:`execute` instead of
    ``session.execute`` when a router is attached, on the worker's own
    thread — so main-path admission, slot release and latency
    accounting are untouched.
    """

    def __init__(self, server, config: BurstConfig, provision, retire):
        self._server = server
        self.config = config
        #: () -> BurstCluster; raises on provisioning failure.
        self._provision = provision
        #: (BurstCluster) -> None; releases the cluster's instances.
        self._retire = retire
        self._lock = threading.Lock()
        #: Held (non-blocking) by the one thread doing a provision so
        #: queue pressure triggers exactly one restore.
        self._provision_lock = threading.Lock()
        self.active: BurstCluster | None = None
        #: Every burst cluster ever provisioned, for stv_burst_clusters.
        self.history: list[BurstCluster] = []
        #: main session_id -> engine session on the active burst cluster.
        self._sessions: dict[int, object] = {}
        self._pressure_since: float | None = None
        self._cooldown_until: float = float("-inf")
        self.routed = 0
        self.fallbacks = 0
        self.stale_rejects = 0
        self.provisions = 0
        self.provision_failures = 0
        self.retirements = 0

    # ---- the worker-thread entry point -----------------------------------

    def execute(self, handle, sql: str):
        """Execute *sql* for *handle*, on burst when eligible and fresh."""
        burst = self._route(handle, sql)
        if burst is None:
            return handle.session.execute(sql)
        try:
            result = self._execute_on_burst(handle, burst, sql)
        except Exception as exc:  # noqa: BLE001 — idempotent fallback below
            with self._lock:
                self.fallbacks += 1
                burst.fallbacks += 1
            if isinstance(exc, _INFRA_ERRORS):
                self.retire_burst(burst, reason=f"fault: {exc}")
            # The burst attempt recorded nothing into main's stl_query,
            # so re-running on main executes the SELECT exactly once
            # from the client's point of view.
            return handle.session.execute(sql)
        return result

    # ---- routing decision ------------------------------------------------

    def _route(self, handle, sql: str) -> BurstCluster | None:
        if handle.queue_name != self.config.queue:
            return None
        try:
            statement = parse_statement(sql)
        except Exception:  # noqa: BLE001 — main reports the parse error
            return None
        if not isinstance(statement, ast.SelectStatement):
            return None
        if handle.session.in_transaction:
            return None
        tables = referenced_tables(statement)
        catalog = self._server.cluster.catalog
        for name in tables:
            if catalog.is_system_table(name) or not catalog.has_table(name):
                return None
        now = self._server.now()
        burst = self.active
        if burst is None:
            burst = self._maybe_provision(handle, now)
            if burst is None:
                return None
        else:
            self.retire_if_idle(now)
            burst = self.active
            if burst is None:
                return None
        for name in tables:
            if epoch.table_epoch(name) != burst.snapshot_epochs.get(name):
                with self._lock:
                    self.stale_rejects += 1
                    burst.stale_rejects += 1
                return None
        return burst

    def _maybe_provision(self, handle, now: float) -> BurstCluster | None:
        waiting = handle._gate.waiting
        if waiting < self.config.burst_queue_depth_threshold:
            self._pressure_since = None
            return None
        if self._pressure_since is None:
            self._pressure_since = now
        if now - self._pressure_since < self.config.burst_sustain_s:
            return None
        if now < self._cooldown_until:
            return None
        # Exactly one thread restores; the rest keep queueing on main
        # rather than stacking up behind the restore.
        if not self._provision_lock.acquire(blocking=False):
            return None
        try:
            if self.active is not None:
                return self.active
            try:
                burst = self._provision()
            except Exception as exc:  # noqa: BLE001 — count + cool down
                with self._lock:
                    self.provision_failures += 1
                self._cooldown_until = (
                    self._server.now() + self.config.provision_cooldown_s
                )
                self._record_event("provision_failed", str(exc))
                return None
            with self._lock:
                self.provisions += 1
                self.active = burst
                self.history.append(burst)
            self._pressure_since = None
            self._record_event(
                "provisioned",
                f"{burst.cluster_id} from {burst.snapshot_id}",
            )
            return burst
        finally:
            self._provision_lock.release()

    # ---- burst-side execution --------------------------------------------

    def _execute_on_burst(self, handle, burst: BurstCluster, sql: str):
        session = self._burst_session(handle, burst)
        started = self._server.now()
        t0 = time.perf_counter()
        result = session.execute(sql)
        elapsed_us = int((time.perf_counter() - t0) * 1_000_000)
        now = self._server.now()
        with self._lock:
            self.routed += 1
            burst.routed_queries += 1
            burst.last_routed_at = now
        self._record_routed(handle, sql, result, started, elapsed_us)
        return result

    def _burst_session(self, handle, burst: BurstCluster):
        with self._lock:
            session = self._sessions.get(handle.session_id)
            if session is not None and session._cluster is burst.cluster:
                return session
        main = handle.session
        session = burst.cluster.connect(
            executor=main._executor_kind,
            parallelism=main._parallelism,
            pool_mode=main._pool_mode,
            user_name=handle.user_name,
            queue=handle.queue_name,
        )
        with self._lock:
            self._sessions[handle.session_id] = session
        return session

    def _record_routed(
        self, handle, sql: str, result, started: float, elapsed_us: int
    ) -> None:
        """Mirror the routed statement into *main's* stl_query.

        The burst cluster's own systables logged the execution detail;
        main's log is the fleet-facing record, so capture/replay and
        the chaos drills see every query exactly once with
        ``routed_to='burst'``.
        """
        systables = self._server.cluster.systables
        if systables is None:
            return
        fingerprint = ""
        if result.command == "SELECT":
            fingerprint = result_fingerprint(result.columns, result.rows)
        # Engine sessions log the canonical (re-serialized) statement
        # text; match that so fleet tooling groups routed and main
        # executions of the same query together.
        try:
            text = parse_statement(sql).to_sql()
        except Exception:  # noqa: BLE001 — routed SQL always parsed once
            text = sql
        systables.record_query(
            systables.next_query_id(),
            text=text,
            state="success",
            started=started,
            ended=systables.now,
            elapsed_us=elapsed_us,
            executor=result.stats.executor if result.stats else None,
            rows=result.rowcount,
            queue=handle.queue_name,
            session_id=handle.session_id,
            user_name=handle.user_name,
            result_fingerprint=fingerprint,
            routed_to="burst",
        )

    # ---- retirement ------------------------------------------------------

    def retire_if_idle(self, now: float | None = None) -> bool:
        """Retire the active burst cluster once it has sat idle."""
        burst = self.active
        if burst is None:
            return False
        if now is None:
            now = self._server.now()
        if now - burst.last_routed_at < self.config.burst_idle_timeout_s:
            return False
        self.retire_burst(burst, reason="idle")
        return True

    def retire_burst(self, burst: BurstCluster, reason: str = "") -> None:
        with self._lock:
            if burst.state != "active":
                return
            burst.state = "retired"
            if self.active is burst:
                self.active = None
            self._sessions = {}
            self.retirements += 1
        try:
            self._retire(burst)
        finally:
            close = getattr(burst.cluster, "close", None)
            if close is not None:
                close()
        self._record_event("retired", f"{burst.cluster_id}: {reason}")

    def shutdown(self) -> None:
        """Retire whatever is still running (server shutdown)."""
        burst = self.active
        if burst is not None:
            self.retire_burst(burst, reason="shutdown")

    # ---- observability ---------------------------------------------------

    def _record_event(self, action: str, detail: str) -> None:
        injector = getattr(self._server.cluster, "fault_injector", None)
        if injector is None:
            return
        injector.record(
            f"burst_{action}", target=self.config.queue, detail=detail[:512]
        )

    def rows(self) -> list[tuple]:
        """Rows for the ``stv_burst_clusters`` system table."""
        with self._lock:
            bursts = list(self.history)
        return [
            (
                b.cluster_id,
                b.state,
                b.snapshot_id,
                b.provisioned_at,
                b.last_routed_at,
                b.routed_queries,
                b.fallbacks,
                b.stale_rejects,
            )
            for b in bursts
        ]

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "routed": self.routed,
                "fallbacks": self.fallbacks,
                "stale_rejects": self.stale_rejects,
                "provisions": self.provisions,
                "provision_failures": self.provision_failures,
                "retirements": self.retirements,
            }


# Re-exported field-order reference for stv_burst_clusters consumers.
BURST_CLUSTER_COLUMNS = (
    "cluster_id",
    "state",
    "snapshot_id",
    "provisioned_at",
    "last_routed_at",
    "routed_queries",
    "fallbacks",
    "stale_rejects",
)
