"""A concurrent client fleet: serve it, watch it, capture it, replay it.

Walks the full multi-session story: a ClusterServer multiplexes a
synthetic fleet (dashboards, ad-hoc analysts, an ETL writer) over one
cluster with live WLM admission; stv_sessions and the server metrics
show what's happening; the workload is then captured from stl_query
and replayed at 8x pacing against a fresh cluster with the results
diffed query-by-query against the original run.

Run:  python examples/concurrent_fleet.py
"""

import threading

from repro import Cluster
from repro.replay import (
    FleetProfile,
    TableSpec,
    capture_workload,
    diff_capture,
    replay,
    synthesize,
)
from repro.server import ClusterServer, ServerConfig

KEYS = 25
ROWS = 500


def build_cluster() -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    session = cluster.connect()
    session.execute("CREATE TABLE sales (k int, v int)")
    session.execute(
        "INSERT INTO sales VALUES "
        + ",".join(f"({i % KEYS}, {i})" for i in range(ROWS))
    )
    # Captures should hold the fleet's queries, not this setup DDL: the
    # replay target is rebuilt from the same data, not from the log.
    cluster.systables.store.clear("stl_query")
    return cluster


def main() -> None:
    # ---- serve a live fleet ---------------------------------------------
    cluster = build_cluster()
    server = ClusterServer(cluster, ServerConfig())

    def dashboard(index: int) -> None:
        handle = server.open_session(user_name=f"dash-{index}")
        for step in range(8):
            low = (index * 4 + step) % KEYS
            handle.execute(
                f"SELECT count(*), sum(v) FROM sales WHERE k >= {low}"
            )
        handle.close()

    threads = [
        threading.Thread(target=dashboard, args=(i,)) for i in range(6)
    ]
    probe = server.open_session(user_name="operator")
    for thread in threads:
        thread.start()
    live = probe.execute(
        "SELECT session_id, user_name, state FROM stv_sessions"
    )
    print(f"live sessions while the fleet runs: {live.rowcount}")
    for thread in threads:
        thread.join()
    probe.close()

    metrics = server.metrics()
    print(
        f"fleet finished: {metrics.queries} queries, "
        f"{metrics.errors} errors, {metrics.qps:.0f} QPS, "
        f"p50 {metrics.p50_ms:.2f} ms, p99 {metrics.p99_ms:.2f} ms"
    )
    server.shutdown()

    # ---- capture and replay at 8x ---------------------------------------
    workload = capture_workload(cluster)
    print(
        f"\ncaptured {len(workload)} queries across "
        f"{len(workload.sessions())} sessions "
        f"({workload.read_fraction:.0%} reads, "
        f"{workload.duration_s:.2f}s span)"
    )
    target = build_cluster()
    report = replay(workload, target, speedup=8.0)
    diff = diff_capture(workload, report)
    print(
        f"replayed at 8x in {report.wall_s:.2f}s wall: "
        f"{diff.compared} results compared, "
        f"{len(diff.mismatches)} mismatches, "
        f"{len(diff.new_errors)} new errors "
        f"-> bit-identical: {diff.results_identical}"
    )

    # ---- synthesize a larger like-shaped fleet --------------------------
    profile = FleetProfile(dashboards=4, adhoc=2, etl=1, duration_s=0.4)
    synthetic = synthesize(
        profile, [TableSpec("sales", "k", "v", key_high=KEYS)], seed=42
    )
    fresh = build_cluster()
    synth_report = replay(synthetic, fresh, speedup=4.0)
    print(
        f"\nsynthetic fleet ({profile.sessions} sessions, seed 42): "
        f"{len(synthetic)} queries replayed, "
        f"{synth_report.error_count} errors"
    )


if __name__ == "__main__":
    main()
