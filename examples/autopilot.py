"""The simplicity thesis, end to end: a warehouse that tunes itself.

§3 of the paper argues the product is the *removal of decisions*: "I want
a relationship with my data, not my database." This example runs the
future-work features that finish the job:

* automatic relationalization — raw JSON logs become a typed table with
  one call (§4),
* the workload-driven tuning advisor — dist/sort keys recommended from
  observed queries (§3.3: "striving to make sort column and distribution
  key equally dusty"),
* automatic table maintenance — the daemon VACUUMs degraded tables when
  load is light (§3.2's future work),
* WLM sizing — simulated admission shows why the short-query queue exists.

Run:  python examples/autopilot.py
"""

import json

from repro import Cluster
from repro.cloud import SimClock
from repro.controlplane.maintenance import AutoMaintenanceDaemon
from repro.engine.advisor import TuningAdvisor
from repro.engine.health import table_health
from repro.engine.relationalize import relationalize
from repro.engine.wlm import QueryArrival, QueueConfig, WorkloadManager
from repro.util.units import HOUR


def raw_log_lines(n: int) -> list[str]:
    return [
        json.dumps(
            {
                "Request ID": i,
                "when": f"2015-06-{1 + i % 28:02d} {i % 24:02d}:00:00",
                "customer": i % 120,
                "path": f"/api/v1/resource/{i % 30}",
                "latency_ms": (i % 450) + 3,
                "ok": i % 17 != 0,
            }
        )
        for i in range(12_000)
    ]


def main() -> None:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=512)
    session = cluster.connect()

    # 1. Dark data in, typed table out — no schema written by hand.
    cluster.register_inline_source("lake://api-logs", raw_log_lines(12_000))
    schema = relationalize(cluster, session, "api_logs", "lake://api-logs")
    print("inferred schema:")
    print(f"  {schema.create_table_sql()}")

    # 2. Run the actual workload for a while.
    session.execute(
        "CREATE TABLE customers (customer int, plan varchar(8))"
    )
    session.execute(
        "INSERT INTO customers VALUES "
        + ",".join(f"({i}, '{'pro' if i % 4 == 0 else 'std'}')" for i in range(120))
    )
    for _ in range(5):
        session.execute(
            "SELECT c.plan, count(*), avg(l.latency_ms) FROM api_logs l "
            "JOIN customers c ON l.customer = c.customer "
            "WHERE l.when_ >= TIMESTAMP '2015-06-20 00:00:00' "
            "GROUP BY c.plan"
        )
        session.execute(
            "SELECT count(*) FROM api_logs WHERE customer = 7 AND NOT ok"
        )

    # 3. The advisor reads the workload and the statistics.
    advisor = TuningAdvisor(cluster.catalog, cluster.workload)
    print("\ntuning recommendations:")
    for rec in advisor.recommend_all():
        print(f"  {rec.table_name}: {rec.current} -> {rec.suggested}")
        print(f"      because {rec.rationale}")

    # 4. Time passes; churn degrades the table; the daemon self-corrects.
    session.execute("DELETE FROM api_logs WHERE NOT ok")
    health = table_health(cluster, "api_logs")
    print(
        f"\nafter retention delete: {health.dead_fraction:.0%} of rows dead"
    )
    clock = SimClock()
    daemon = AutoMaintenanceDaemon(
        cluster, clock, dead_threshold=0.05, poll_interval_s=6 * HOUR
    )
    daemon.start()
    clock.advance(7 * HOUR)  # overnight
    for action in daemon.actions:
        print(f"  auto-maintenance: VACUUM {action.table_name} ({action.reason})")
    health = table_health(cluster, "api_logs")
    print(f"  health now: {health.dead_fraction:.0%} dead")

    # 5. WLM sizing: why dashboards get their own queue.
    etl = [QueryArrival("all", i * 3.0, 240.0, "etl") for i in range(6)]
    dashboards = [QueryArrival("all", 15.0 + i, 0.8, "dash") for i in range(30)]
    single = WorkloadManager(
        [QueueConfig("all", slots=5, memory_fraction=1.0)]
    ).simulate(etl + dashboards)["all"]
    dash_waits = [
        o.wait_s for o in single.outcomes if o.arrival.label == "dash"
    ]
    print(
        f"\nWLM, one shared queue: dashboards wait "
        f"{sum(dash_waits) / len(dash_waits):.0f}s on average behind ETL"
    )
    split = WorkloadManager(
        [
            QueueConfig("etl", slots=3, memory_fraction=0.7),
            QueueConfig("short", slots=2, memory_fraction=0.3),
        ]
    ).simulate(
        [QueryArrival("etl", a.arrival_s, a.duration_s) for a in etl]
        + [QueryArrival("short", a.arrival_s, a.duration_s) for a in dashboards]
    )
    print(
        f"WLM, dedicated short queue: dashboards wait "
        f"{split['short'].mean_wait_s:.1f}s"
    )


if __name__ == "__main__":
    main()
