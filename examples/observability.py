"""Observability: the warehouse explains itself through system tables.

Runs a small workload, then answers the questions an operator actually
asks — what ran, what was slow, what did zone maps skip, what faults
fired — entirely through SQL over stl_*/stv_*/svl_* tables, the way the
paper's service surfaces telemetry without a separate monitoring stack.
Finishes with EXPLAIN ANALYZE: the plan annotated with actual row counts
and per-operator timings.

Run:  python examples/observability.py
"""

from repro import Cluster
from repro.engine.wlm import QueryArrival, QueueConfig, WorkloadManager
from repro.faults.injector import FaultInjector


def show(title: str, result) -> None:
    print(f"\n{title}")
    print(f"  {' | '.join(result.columns)}")
    for row in result.rows:
        print(f"  {' | '.join(str(v) for v in row)}")


def main() -> None:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=512)
    session = cluster.connect()

    # ---- a workload to observe ------------------------------------------
    session.execute(
        "CREATE TABLE pageviews (ts int, url varchar(64), ms int) "
        "DISTSTYLE EVEN SORTKEY(ts)"
    )
    cluster.register_inline_source(
        "demo://pageviews",
        [f"{i}|/page/{i % 50}|{(i * 7) % 400}" for i in range(50_000)],
    )
    session.execute("COPY pageviews FROM 'demo://pageviews'")
    session.execute("SELECT count(*) FROM pageviews")
    session.execute(
        "SELECT url, avg(ms) FROM pageviews WHERE ts < 1000 "
        "GROUP BY url ORDER BY avg(ms) DESC LIMIT 5"
    )
    session.execute(
        "SELECT count(*) FROM pageviews WHERE ts BETWEEN 40000 AND 41000"
    )

    # ---- what ran, and how long? (stl_query) ----------------------------
    show(
        "slowest statements (stl_query):",
        session.execute(
            "SELECT query, elapsed_us, rows, querytxt FROM stl_query "
            "WHERE state = 'success' ORDER BY elapsed_us DESC LIMIT 5"
        ),
    )

    # ---- which scans pruned best? (svl_query_summary) -------------------
    show(
        "most zone-map pruning (svl_query_summary):",
        session.execute(
            "SELECT query, operator, blocks_read, blocks_skipped "
            "FROM svl_query_summary WHERE blocks_skipped > 0 "
            "ORDER BY blocks_skipped DESC LIMIT 5"
        ),
    )

    # ---- what's on disk? (stv_blocklist, joined to a user table) --------
    cluster.seal_table("pageviews")
    session.execute("CREATE TABLE owners (tbl_name varchar(128), team varchar(32))")
    session.execute("INSERT INTO owners VALUES ('pageviews', 'web-analytics')")
    show(
        "blocks per owned table (stv_blocklist JOIN owners):",
        session.execute(
            "SELECT o.team, b.col, count(*) blocks, sum(b.size_bytes) total_bytes "
            "FROM stv_blocklist b JOIN owners o ON b.tbl = o.tbl_name "
            "GROUP BY o.team, b.col ORDER BY b.col"
        ),
    )

    # ---- admission control outcomes (stv_wlm_query_state) ---------------
    wlm = WorkloadManager(
        [
            QueueConfig("dashboards", slots=2, memory_fraction=0.4,
                        admission_timeout_s=5.0),
            QueueConfig("etl", slots=1, memory_fraction=0.6),
        ],
        systables=cluster.systables,
    )
    wlm.simulate(
        [
            QueryArrival("dashboards", 0.0, 4.0, label="daily-kpis"),
            QueryArrival("dashboards", 0.5, 4.0, label="funnel"),
            QueryArrival("dashboards", 1.0, 4.0, label="retention"),  # waits
            QueryArrival("etl", 0.0, 30.0, label="nightly-load"),
        ]
    )
    show(
        "WLM admission (stv_wlm_query_state):",
        session.execute(
            "SELECT queue, label, state, wait_s FROM stv_wlm_query_state "
            "ORDER BY queue, arrival_s"
        ),
    )

    # ---- fault history (stl_fault_events) -------------------------------
    injector = FaultInjector()
    cluster.attach_faults(injector)
    injector.record("node_crash", target="node-1", detail="chaos drill")
    injector.record("node_recovered", target="node-1")
    show(
        "fault timeline (stl_fault_events):",
        session.execute("SELECT at_s, kind, target FROM stl_fault_events"),
    )

    # ---- EXPLAIN ANALYZE: the plan with actuals -------------------------
    print("\nEXPLAIN ANALYZE:")
    plan = session.execute(
        "EXPLAIN ANALYZE SELECT url, count(*) FROM pageviews "
        "WHERE ts < 5000 GROUP BY url ORDER BY count(*) DESC LIMIT 3"
    )
    for (line,) in plan.rows:
        print(f"  {line}")


if __name__ == "__main__":
    main()
