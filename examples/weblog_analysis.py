"""Semi-structured "big data" analysis (paper §4, second use case).

"Many customers also use Amazon Redshift for the integrated analysis of
log and transaction data. We see a number of customers migrating away
from HIVE on Hadoop..."

This example ingests JSON web logs with COPY ... JSON, joins them to a
relational user table, uses APPROXIMATE COUNT(DISTINCT) for unique-visitor
estimates, and shows the interleaved (z-curve) sort key pruning on both
time and user dimensions.

Run:  python examples/weblog_analysis.py
"""

import json

from repro import Cluster


def synth_log_lines(n: int) -> list[str]:
    lines = []
    for i in range(n):
        record = {
            "ts": i,
            "user_id": (i * 7919) % 500,
            "url": f"/products/{(i * 13) % 60}",
            "status": 200 if i % 23 else 500,
            "bytes": 512 + (i % 4096),
        }
        lines.append(json.dumps(record))
    return lines


def main() -> None:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=512)
    session = cluster.connect()

    session.execute(
        """
        CREATE TABLE weblogs (
            ts      int,
            user_id int,
            url     varchar(64),
            status  int,
            bytes   int
        ) DISTKEY(user_id) INTERLEAVED SORTKEY(ts, user_id)
        """
    )
    session.execute(
        "CREATE TABLE users (user_id int, plan varchar(8)) DISTKEY(user_id)"
    )
    cluster.register_inline_source("logs://day1", synth_log_lines(24_000))
    cluster.register_inline_source(
        "demo://users",
        [f"{i}|{'pro' if i % 5 == 0 else 'free'}" for i in range(500)],
    )
    session.execute("COPY users FROM 'demo://users'")
    loaded = session.execute("COPY weblogs FROM 'logs://day1' JSON")
    print(f"ingested {loaded.rowcount:,} JSON log records")

    # Unique visitors: exact vs HyperLogLog (constant memory, mergeable
    # across slices — the distributed approximate aggregate of §4).
    exact = session.execute(
        "SELECT count(DISTINCT user_id) FROM weblogs"
    ).scalar()
    approx = session.execute(
        "SELECT APPROXIMATE count(DISTINCT user_id) FROM weblogs"
    ).scalar()
    print(f"unique visitors: exact={exact}, approximate={approx}")

    # Error-rate report joined to the relational side.
    report = session.execute(
        """
        SELECT u.plan,
               count(*) AS hits,
               sum(CASE WHEN w.status = 500 THEN 1 ELSE 0 END) AS errors,
               avg(w.bytes) AS avg_bytes
        FROM weblogs w
        JOIN users u ON w.user_id = u.user_id
        GROUP BY u.plan
        ORDER BY hits DESC
        """
    )
    print("\ntraffic by plan:")
    for plan, hits, errors, avg_bytes in report.rows:
        print(
            f"  {plan:5s} {hits:7,d} hits  {errors:4d} errors  "
            f"{avg_bytes:7.0f} avg bytes"
        )

    # The z-curve serves *both* dimensions — no second projection needed.
    by_time = session.execute(
        "SELECT count(*) FROM weblogs WHERE ts < 1200"
    )
    by_user = session.execute(
        "SELECT count(*) FROM weblogs WHERE user_id < 25"
    )
    print(
        f"\ninterleaved sort key pruning:"
        f"\n  time window:  skipped {by_time.stats.scan.blocks_skipped} of "
        f"{by_time.stats.scan.blocks_total} blocks"
        f"\n  user filter:  skipped {by_user.stats.scan.blocks_skipped} of "
        f"{by_user.stats.scan.blocks_total} blocks"
    )

    # Top failing URLs, PostgreSQL-flavoured SQL all the way down.
    top = session.execute(
        """
        WITH failures AS (
            SELECT url FROM weblogs WHERE status = 500
        )
        SELECT url, count(*) AS n
        FROM failures
        GROUP BY url
        ORDER BY n DESC, url
        LIMIT 3
        """
    )
    print("\ntop failing URLs:")
    for url, n in top.rows:
        print(f"  {url:20s} {n}")


if __name__ == "__main__":
    main()
