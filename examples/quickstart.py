"""Quickstart: an embedded columnar MPP warehouse in a few lines.

Creates a 2-node / 4-slice cluster, defines a star schema with
distribution and sort keys, bulk-loads with COPY (automatic compression),
and runs analytic SQL — showing the plan, the blocks skipped by zone
maps, and the zero bytes moved by a co-located join.

Run:  python examples/quickstart.py
"""

from repro import Cluster


def main() -> None:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=1024)
    session = cluster.connect()

    # DDL: dist key co-locates the join; sort key powers zone maps.
    session.execute(
        """
        CREATE TABLE sales (
            sale_id   bigint NOT NULL,
            product_id int,
            sold_at   date,
            quantity  int,
            price     decimal(8,2)
        ) DISTKEY(product_id) SORTKEY(sold_at)
        """
    )
    session.execute(
        """
        CREATE TABLE products (
            product_id int,
            name       varchar(32),
            category   varchar(16)
        ) DISTKEY(product_id)
        """
    )

    # COPY from a registered source (the cloud layer registers s3:// the
    # same way). Compression is chosen automatically from a data sample.
    cluster.register_inline_source(
        "demo://sales",
        [
            f"{i}|{i % 200}|2015-{1 + (i * 37) % 12:02d}-{1 + i % 28:02d}|"
            f"{1 + i % 5}|{(i % 90) + 0.99}"
            for i in range(20_000)
        ],
    )
    cluster.register_inline_source(
        "demo://products",
        [f"{i}|product-{i}|cat-{i % 8}" for i in range(200)],
    )
    session.execute("COPY products FROM 'demo://products'")
    result = session.execute("COPY sales FROM 'demo://sales'")
    print(f"loaded {result.rowcount:,} sales rows")

    encodings = {
        c.name: c.encode for c in cluster.catalog.table("sales").columns
    }
    print(f"auto-chosen encodings: {encodings}")

    # A co-located join + aggregation.
    result = session.execute(
        """
        SELECT p.category,
               count(*)                    AS sales,
               sum(s.quantity * s.price)   AS revenue
        FROM sales s
        JOIN products p ON s.product_id = p.product_id
        GROUP BY p.category
        ORDER BY revenue DESC
        LIMIT 5
        """
    )
    print("\ntop categories:")
    for category, sales, revenue in result.rows:
        print(f"  {category:8s} {sales:6,d} sales   ${revenue:12,.2f}")
    print(
        f"(join moved {result.stats.network.total_bytes} interconnect "
        f"bytes — co-located on product_id)"
    )

    # Zone maps prune the date-range scan.
    result = session.execute(
        "SELECT count(*), sum(quantity) FROM sales "
        "WHERE sold_at BETWEEN DATE '2015-06-01' AND DATE '2015-06-30'"
    )
    scan = result.stats.scan
    print(
        f"\nJune scan: {result.rows[0][0]} rows; "
        f"read {scan.blocks_read} blocks, skipped {scan.blocks_skipped} "
        f"via zone maps"
    )

    # EXPLAIN shows the distributed plan.
    print("\nplan:")
    plan = session.execute(
        "EXPLAIN SELECT p.name, count(*) FROM sales s "
        "JOIN products p ON s.product_id = p.product_id "
        "WHERE s.sold_at >= DATE '2015-06-01' GROUP BY p.name"
    )
    for (line,) in plan.rows:
        print(f"  {line}")


if __name__ == "__main__":
    main()
