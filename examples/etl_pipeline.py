"""Data-transformation pipeline (paper §4, third use case).

"An increasing number of Amazon Redshift customers use the service as
part of a data processing pipeline, taking large amounts of raw data,
dropping it into the data warehouse to run large SQL jobs that generate
output tables that they can then use in their online business. An example
would be in ad-tech, where many billion ad impressions may be distilled
into lookup tables that informs an ad exchange online service."

Raw ad impressions land hourly; SQL jobs distill them into per-campaign
lookup tables; VACUUM keeps the raw table healthy as old hours are aged
out; transactions make each pipeline stage atomic.

Run:  python examples/etl_pipeline.py
"""

from repro import Cluster

HOURS = 6
IMPRESSIONS_PER_HOUR = 4000


def impression_lines(hour: int) -> list[str]:
    base = hour * IMPRESSIONS_PER_HOUR
    return [
        f"{base + i}|{hour}|{(base + i) % 120}|{(base + i) % 37}|"
        f"{1 if (base + i) % 9 == 0 else 0}|{((base + i) % 50) / 100}"
        for i in range(IMPRESSIONS_PER_HOUR)
    ]


def main() -> None:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=1024)
    session = cluster.connect()

    session.execute(
        """
        CREATE TABLE impressions (
            impression_id bigint,
            hour          int,
            campaign_id   int,
            site_id       int,
            clicked       int,
            cost          float
        ) DISTKEY(campaign_id) SORTKEY(hour)
        """
    )

    # Hourly ingestion cadence.
    for hour in range(HOURS):
        cluster.register_inline_source(
            f"adtech://hour/{hour}", impression_lines(hour)
        )
        session.execute(f"COPY impressions FROM 'adtech://hour/{hour}'")
    total = session.execute("SELECT count(*) FROM impressions").scalar()
    print(f"ingested {total:,} impressions over {HOURS} hours")

    # Stage 1: distill into the online lookup table with CTAS. DISTSTYLE
    # ALL makes the small output co-locate with anything downstream.
    session.execute(
        """
        CREATE TABLE campaign_stats DISTSTYLE ALL AS
        SELECT campaign_id,
               count(*)                       AS impressions,
               sum(clicked)                   AS clicks,
               sum(cost)                      AS spend,
               sum(clicked) * 1.0 / count(*)  AS ctr
        FROM impressions
        GROUP BY campaign_id
        """
    )
    top = session.execute(
        "SELECT campaign_id, impressions, clicks, ctr FROM campaign_stats "
        "ORDER BY ctr DESC, campaign_id LIMIT 5"
    )
    print("\ntop campaigns by CTR (the ad-exchange lookup table):")
    for campaign, impressions, clicks, ctr in top.rows:
        print(f"  campaign {campaign:3d}: {impressions:5d} imps, "
              f"{clicks:3d} clicks, ctr={ctr:.3f}")

    # Stage 2: an atomic swap-style refresh inside a transaction — either
    # the whole hourly refresh lands or none of it.
    session.execute("BEGIN")
    session.execute("DELETE FROM campaign_stats WHERE impressions < 100")
    refreshed = session.execute(
        "SELECT count(*) FROM campaign_stats"
    ).scalar()
    session.execute("COMMIT")
    print(f"\nafter pruning sparse campaigns: {refreshed} rows in lookup")

    # Stage 3: age out the oldest hour and reclaim with VACUUM.
    before = cluster.table_bytes("impressions")
    session.execute("DELETE FROM impressions WHERE hour = 0")
    session.execute("VACUUM impressions")
    after = cluster.table_bytes("impressions")
    print(
        f"aged out hour 0: {before:,d} -> {after:,d} bytes "
        f"after VACUUM"
    )

    # The pipeline's freshness query — zone maps keep it cheap.
    fresh = session.execute(
        f"SELECT campaign_id, sum(cost) FROM impressions "
        f"WHERE hour = {HOURS - 1} GROUP BY campaign_id "
        f"ORDER BY 2 DESC LIMIT 3"
    )
    print("\nlatest hour's top spenders:")
    for campaign, spend in fresh.rows:
        print(f"  campaign {campaign:3d}: ${spend:8.2f}")
    print(
        f"(scan skipped {fresh.stats.scan.blocks_skipped} of "
        f"{fresh.stats.scan.blocks_total} blocks)"
    )


if __name__ == "__main__":
    main()
