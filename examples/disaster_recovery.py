"""The managed-service story: snapshots, streaming restore, DR, encryption.

Walks the §2.2/§3.2 lifecycle on the simulated control plane:

* continuous incremental backup (second snapshot uploads ~nothing),
* the Friday-delete / Monday-restore pattern §2.3 mentions,
* streaming restore — SQL opens after metadata, blocks page-fault in,
* one-checkbox disaster recovery into a second region,
* one-checkbox encryption with the block/cluster/master key hierarchy.

All control-plane durations are simulated time from the discrete-event
clock, not wall time.

Run:  python examples/disaster_recovery.py
"""

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.util.units import format_duration


def main() -> None:
    env = CloudEnvironment(seed=42)
    env.ec2.preconfigure("dw2.large", 8)  # the warm pool
    service = RedshiftService(env)

    managed, deploy = service.create_cluster(
        cluster_id="analytics", node_count=2, block_capacity=512
    )
    print(
        f"cluster created in {format_duration(deploy.automated_seconds)} "
        f"simulated ({deploy.click_seconds:.0f}s of console clicks)"
    )

    session = managed.connect()
    session.execute(
        "CREATE TABLE orders (id int, region varchar(8), total float) "
        "DISTKEY(id) SORTKEY(id)"
    )
    managed.engine.register_inline_source(
        "demo://orders", [f"{i}|r{i % 4}|{i * 1.5}" for i in range(10_000)]
    )
    session.execute("COPY orders FROM 'demo://orders'")

    # Continuous incremental backup.
    snap1, timing1 = service.snapshot_cluster(managed.cluster_id, label="friday")
    snap2, _ = service.snapshot_cluster(managed.cluster_id, label="friday-2")
    print(
        f"\nbackup 1: {snap1.blocks_uploaded} blocks uploaded in "
        f"{format_duration(timing1.automated_seconds)}"
        f"\nbackup 2: {snap2.blocks_uploaded} blocks uploaded "
        f"(incremental — nothing changed)"
    )

    # One checkbox: disaster recovery to a second region.
    service.enable_disaster_recovery(managed.cluster_id, "us-west-2")
    service.snapshot_cluster(managed.cluster_id, label="dr-covered")
    remote = env.remote_region("us-west-2")
    mirrored = len(remote.s3.list_objects(managed.backups.bucket))
    print(f"DR enabled: {mirrored} objects mirrored to us-west-2")

    # The Friday pattern: delete the cluster for the weekend.
    service.delete_cluster(managed.cluster_id)
    print("\nFriday evening: cluster deleted (snapshots survive)")

    # Monday: streaming restore — SQL opens after metadata restore.
    restored, result, timing = service.restore_cluster(
        "analytics", "dr-covered", new_cluster_id="analytics-monday",
        streaming=True,
    )
    print(
        f"Monday morning: restored cluster available after "
        f"{format_duration(timing.automated_seconds)} simulated; "
        f"{result.resident_fraction:.0%} of blocks local"
    )
    monday = restored.connect()
    report = monday.execute(
        "SELECT region, count(*), sum(total) FROM orders "
        "WHERE id < 500 GROUP BY region ORDER BY region"
    )
    print("first report (working set page-faulted from S3):")
    for region, n, total in report.rows:
        print(f"  {region}: {n:4d} orders, ${total:10,.1f}")
    print(
        f"after the report: {result.resident_fraction:.0%} of blocks "
        f"resident — the rest stream down in background"
    )

    # One checkbox: encryption, with cheap key rotation.
    timing = service.enable_encryption("analytics-monday")
    print(
        f"\nencryption enabled in {timing.click_seconds:.0f}s of clicks; "
        f"key hierarchy: block keys <- cluster key <- master key"
    )
    # The next backup encrypts every block under its own wrapped key.
    service.snapshot_cluster("analytics-monday", label="encrypted")
    restored.encryption.rotate_cluster_key()
    restored.encryption.rotate_master_key()
    print(
        f"rotated cluster key (re-wrapped "
        f"{restored.encryption.block_key_count} block keys, zero data "
        f"re-encryption) and master key (re-wrapped 1 cluster key)"
    )


if __name__ == "__main__":
    main()
