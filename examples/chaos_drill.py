"""A seeded chaos drill: inject faults, watch the escalators run.

§5's design lesson is "escalators, not elevators" — systems should degrade
under dependency failure, not stop. This drill schedules a deterministic
fault plan against a running managed cluster:

* a 30%-error-rate window on every S3 request,
* a node crash armed to fire mid-query,
* a silent bit-flip in one replicated block,

then runs a query straight through it. The leader retries the failed
segments while the recovery coordinator rebuilds the dead node from
mirrors and scrub-and-repair fixes the corrupt block from its replica —
the query still returns the right answer, and re-running the drill with
the same seed reproduces the identical fault/recovery timeline.

Run:  python examples/chaos_drill.py
"""

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.faults import ChaosOrchestrator, FaultPlan

SEED = 2015
ROWS = 4000


def main() -> None:
    env = CloudEnvironment(seed=SEED)
    env.ec2.preconfigure("dw2.large", 12)  # warm pool for replacements
    service = RedshiftService(env)
    managed, _ = service.create_cluster(
        cluster_id="prod", node_count=4, block_capacity=64
    )

    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(ROWS))
    )
    managed.replication.sync_from_cluster()
    service.snapshot_cluster(managed.cluster_id, label="pre-chaos")
    expected = (ROWS, sum(range(ROWS)))
    print(f"cluster up: {ROWS} rows loaded, mirrored, and backed up to S3")

    # Pick a victim block of the column the query scans, placed off the
    # crashing node so both faults fire independently.
    replicas = managed.replication.replicas
    victim = next(
        block_id
        for block_id in sorted(replicas)
        if replicas[block_id].primary_slice.startswith("node-0-")
        and replicas[block_id].column == "v"
    )

    now = env.clock.now
    plan = (
        FaultPlan(seed=SEED)
        .s3_errors(now, now + 3600.0, rate=0.3)
        .node_crash(now, "node-1")
        .block_bitflip(now, victim)
    )
    chaos = ChaosOrchestrator(env, managed, plan)
    injector = chaos.install()
    env.clock.advance(1.0)  # the scheduled bit-flip fires
    print(
        f"chaos armed (seed {SEED}): S3 30% error window, node-1 crash, "
        f"bit-flip in {victim}"
    )

    result = session.execute("SELECT count(*), sum(v) FROM t")
    got = result.rows[0]
    print(
        f"\nquery under chaos: count={got[0]}, sum={got[1]} "
        f"({'CORRECT' if got == expected else 'WRONG'}) after "
        f"{result.stats.segment_retries} segment retries"
    )

    print("\nfault & recovery timeline:")
    for event in injector.log:
        print(f"  t={event.at_s:9.2f}s  {event.kind:28s} "
              f"{event.target:18s} {event.detail}")

    # Zero data loss: a fresh scrub finds every copy intact again.
    report = managed.replication.scrub(managed.backups.s3_block_reader)
    print(
        f"\npost-drill scrub: {report.blocks_checked} blocks checked, "
        f"{len(report.repaired)} repairs needed, "
        f"{len(report.unrepairable)} unrepairable"
    )
    print(
        f"cluster state: {managed.state.value} "
        f"(writes {'blocked' if managed.engine.read_only else 'flowing'})"
    )


if __name__ == "__main__":
    main()
