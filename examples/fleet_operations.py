"""Operating a fleet (paper §5: "Lessons Learned").

Simulates two years of running the service: a growing fleet, biweekly
release trains with automatic rollback, weekly Pareto-driven defect
extinguishing, and the resulting Figure 4 / Figure 5 curves.

Run:  python examples/fleet_operations.py
"""

from repro.cloud import CloudEnvironment
from repro.controlplane import PatchManager, PatchOutcome, RedshiftService
from repro.ops import FeatureDeliveryModel, FleetOperationsSimulation


def sparkline(values: list[float], width: int = 48) -> str:
    """Tiny terminal chart."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    high = max(sampled) or 1.0
    return "".join(blocks[min(7, int(v / high * 7.999))] for v in sampled)


def main() -> None:
    # --- a small real fleet on the control plane -------------------------
    env = CloudEnvironment(seed=99)
    env.ec2.preconfigure("dw2.large", 32)
    service = RedshiftService(env)
    for i in range(6):
        service.create_cluster(cluster_id=f"customer-{i}", node_count=2,
                               block_capacity=64)
    print(f"fleet: {len(service.fleet)} clusters")

    # A year of biweekly release trains with auto-rollback.
    patches = PatchManager(service, seed="ops-demo")
    applied = rolled_back = 0
    for train in range(26):
        patches.accumulate_development(2)
        release = patches.cut_release()
        for record in patches.patch_fleet(release):
            if record.outcome is PatchOutcome.ROLLED_BACK:
                rolled_back += 1
            else:
                applied += 1
        assert patches.fleet_version_invariant_holds()
    print(
        f"release year: {applied} applications, {rolled_back} automatic "
        f"rollbacks; fleet versions now {sorted(service.fleet_versions())}"
    )

    # --- the statistical fleet at paper scale ----------------------------
    print("\nFigure 4 — cumulative features (2-week trains):")
    releases = FeatureDeliveryModel(seed="demo").simulate(104)
    cumulative = [float(r.cumulative) for r in releases]
    print(f"  {sparkline(cumulative)}  total={releases[-1].cumulative}")

    print("\nFigure 5 — tickets per cluster while the fleet grows:")
    stats = FleetOperationsSimulation(seed="demo").run(104)
    per_cluster = [s.tickets_per_cluster for s in stats]
    clusters = [float(s.clusters) for s in stats]
    print(f"  tickets/cluster: {sparkline(per_cluster)}")
    print(f"  fleet size:      {sparkline(clusters)}  "
          f"({stats[0].clusters} -> {stats[-1].clusters})")
    q1 = sum(per_cluster[:13]) / 13
    q8 = sum(per_cluster[-13:]) / 13
    print(
        f"  tickets/cluster fell {q1 / q8:.1f}x while the fleet grew "
        f"{stats[-1].clusters / stats[0].clusters:.0f}x"
    )

    busy_weeks = [s for s in stats if s.tickets > 50]
    if busy_weeks:
        avg_share = sum(s.top10_share for s in busy_weeks) / len(busy_weeks)
        print(
            f"  top-10 causes account for {avg_share:.0%} of pages on busy "
            f"weeks — the Pareto strategy's premise"
        )


if __name__ == "__main__":
    main()
