"""Ablation a1 — zone-map block skipping (§2.1/§6).

"Redshift foregoes traditional indexes ... and instead focuses on
sequential scan speed through compiled code execution and column-block
skipping based on value-ranges stored in memory."

Sweeps predicate selectivity over a sorted table and measures blocks
read, bytes read, and wall time against a pruning-disabled scan of the
same data.
"""

import time

from repro import Cluster


def build(sortkey: bool) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=1024)
    session = cluster.connect()
    suffix = "SORTKEY(ts)" if sortkey else ""
    session.execute(
        f"CREATE TABLE ev (ts int, v int) DISTSTYLE EVEN {suffix}"
    )
    cluster.register_inline_source(
        "bench://ev", [f"{i}|{i % 100}" for i in range(60_000)]
    )
    session.execute("COPY ev FROM 'bench://ev'")
    return cluster


def test_a1_selectivity_sweep(benchmark, reporter):
    cluster = build(sortkey=True)
    session = cluster.connect()

    lines = [
        "selectivity | blocks read | blocks skipped | chains read "
        "| bytes read | time"
    ]
    sweeps = [
        ("0.1%", "ts < 60"),
        ("1%", "ts < 600"),
        ("10%", "ts < 6000"),
        ("50%", "ts < 30000"),
        ("100%", "ts >= 0"),
    ]
    results = {}
    for label, predicate in sweeps:
        start = time.perf_counter()
        r = session.execute(f"SELECT count(*) FROM ev WHERE {predicate}")
        elapsed = time.perf_counter() - start
        results[label] = r.stats.scan
        lines.append(
            f"{label:>10s} | {r.stats.scan.blocks_read:11d} | "
            f"{r.stats.scan.blocks_skipped:14d} | "
            f"{r.stats.scan.chains_read:11d} | "
            f"{r.stats.scan.bytes_read:10d} | {elapsed * 1000:6.1f} ms"
        )
    reporter("a1 — zone-map skipping vs selectivity", lines)

    benchmark(
        session.execute, "SELECT count(*) FROM ev WHERE ts < 600"
    )

    # Shape: IO tracks selectivity. The floor is one block per slice, so
    # a 1% predicate cannot beat slice_count blocks. Blocks count logical
    # row blocks once; chains_read counts per-column chain decodes and so
    # equals blocks_read here (count(*) over a ts filter reads one chain).
    total = results["100%"].blocks_read
    slice_floor = 4  # 2 nodes x 2 slices
    assert results["1%"].blocks_read <= slice_floor
    assert results["10%"].blocks_read < total * 0.25
    assert results["100%"].blocks_skipped == 0
    assert results["100%"].chains_read == results["100%"].blocks_read


def test_a1_unsorted_baseline_cannot_skip(benchmark, reporter):
    """The same predicate on an unsorted (no sort key) load reads
    everything — pruning needs clustering, which is the sort key's job."""
    import random

    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=1024)
    session = cluster.connect()
    session.execute("CREATE TABLE ev (ts int, v int) DISTSTYLE EVEN")
    lines = [f"{i}|{i % 100}" for i in range(60_000)]
    random.Random(3).shuffle(lines)
    cluster.register_inline_source("bench://shuffled", lines)
    session.execute("COPY ev FROM 'bench://shuffled'")

    r = benchmark(session.execute, "SELECT count(*) FROM ev WHERE ts < 600")
    reporter(
        "a1 — unsorted baseline",
        [
            f"1% predicate on unsorted data: {r.stats.scan.blocks_read} read, "
            f"{r.stats.scan.blocks_skipped} skipped (sorted skips >95%)"
        ],
    )
    assert r.scalar() == 600
    assert r.stats.scan.blocks_skipped == 0


def test_a1_skipping_speeds_up_wall_time(reporter, benchmark):
    cluster = build(sortkey=True)
    session = cluster.connect()

    def selective():
        return session.execute("SELECT sum(v) FROM ev WHERE ts < 600")

    def full():
        return session.execute("SELECT sum(v) FROM ev WHERE ts >= 0")

    t0 = time.perf_counter()
    for _ in range(3):
        selective()
    selective_s = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for _ in range(3):
        full()
    full_s = (time.perf_counter() - t0) / 3
    benchmark.pedantic(selective, iterations=1, rounds=1)
    reporter(
        "a1 — wall-time effect of skipping",
        [
            f"1% predicate: {selective_s * 1000:.1f} ms",
            f"full scan:    {full_s * 1000:.1f} ms",
            f"speedup: {full_s / selective_s:.1f}x",
        ],
    )
    assert selective_s < full_s / 3
