"""Table t2 — provisioning and time-to-first-report claims.

§1/§3.1: cluster creation "averaged 15 minutes" at launch; preconfigured
warm-pool nodes "reduced provisioning time to 3 minutes"; time to first
report "can be as little as 15 minutes, even ... a multi-PB cluster";
experimentation costs "$0.25/hour/node" with a 160GB free-trial node.
"""

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.perfmodel import NODE_PROFILES
from repro.util.units import GB, MINUTE, format_duration


def create_once(warm: bool, seed: int) -> float:
    env = CloudEnvironment(seed=seed)
    if warm:
        env.ec2.preconfigure("dw2.large", 8)
    service = RedshiftService(env)
    _, timing = service.create_cluster(node_count=2, block_capacity=64)
    return timing.automated_seconds


def test_t2_cold_vs_warm_provisioning(benchmark, reporter):
    cold = [create_once(False, seed) for seed in range(6)]
    warm = [create_once(True, seed) for seed in range(6)]
    benchmark.pedantic(create_once, args=(True, 99), iterations=1, rounds=1)

    cold_avg = sum(cold) / len(cold)
    warm_avg = sum(warm) / len(warm)
    reporter(
        "Table t2 — provisioning time",
        [
            f"cold creates: avg {format_duration(cold_avg)} "
            f"(paper: 'averaged 15 minutes')",
            f"warm-pool creates: avg {format_duration(warm_avg)} "
            f"(paper: 'reduced provisioning time to 3 minutes')",
            f"speedup: {cold_avg / warm_avg:.1f}x",
        ],
    )
    # Shape: cold is many minutes, warm a few, warm ≪ cold.
    assert 8 * MINUTE < cold_avg < 25 * MINUTE
    assert warm_avg < 6 * MINUTE
    assert warm_avg < cold_avg / 2


def test_t2_time_to_first_report(benchmark, reporter):
    env = CloudEnvironment(seed=7)
    env.ec2.preconfigure("dw2.large", 8)
    service = RedshiftService(env)
    ttfr = benchmark.pedantic(
        service.time_to_first_report, kwargs={"node_count": 2},
        iterations=1, rounds=1,
    )
    reporter(
        "Table t2 — time to first report",
        [f"decide → create → connect → first result: {format_duration(ttfr)} "
         f"(paper: 'as little as 15 minutes')"],
    )
    assert ttfr < 15 * MINUTE


def test_t2_free_trial_economics(benchmark, reporter):
    node = benchmark.pedantic(
        lambda: NODE_PROFILES["dw2.large"], iterations=1, rounds=1
    )
    reporter(
        "Table t2 — experimentation pricing anchors",
        [
            f"dw2.large: ${node.hourly_price_usd}/hour "
            f"(paper: '$0.25/hour/node')",
            f"dw2.large storage: {node.storage_bytes / GB:.0f} GB "
            f"(paper free trial: '160GB of compressed SSD data')",
        ],
    )
    assert node.hourly_price_usd == 0.25
    assert abs(node.storage_bytes - 160 * 10 ** 9) < 10 ** 9
