"""Ablation a14 — concurrent-session throughput through the server.

The multi-session server exists so one cluster can serve a fleet of
clients; this ablation measures what that buys. A read-heavy dashboard
mix (repeated aggregate templates with ~2 ms think time between
queries) runs at 1, 8, and 64 concurrent sessions, with the leader
result cache off and on, reporting QPS and p50/p99 statement latency
per combination.

Think time is the lever: a single session leaves the cluster idle
between its queries, while 64 sessions overlap their think times, so
total QPS must scale even though statement execution itself is
serialized by the interpreter. The acceptance bar is >= 2x the
single-session QPS at 64 sessions on the cache-on mix (where hits cost
microseconds and admission/queueing is the only contention).
"""

from __future__ import annotations

import threading
import time

from repro import Cluster
from repro.server import ClusterServer, ServerConfig

ROWS = 10_000
LEVELS = (1, 8, 64)
QUERIES_PER_SESSION = 24
THINK_S = 0.002

#: The dashboard template pool: a read-heavy, repeat-heavy mix.
TEMPLATES = (
    "SELECT count(*) FROM f",
    "SELECT a, count(*) FROM f GROUP BY a",
    "SELECT sum(b) FROM f WHERE a < 40",
    "SELECT min(b), max(b) FROM f",
)


def build() -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=1024)
    session = cluster.connect()
    session.execute("CREATE TABLE f (a int, b int) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}" for i in range(ROWS)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster


def drive(cluster: Cluster, sessions: int, cache_on: bool):
    """One fleet run; returns (qps, p50_ms, p99_ms)."""
    server = ClusterServer(cluster, ServerConfig())
    threads = []

    def client(index: int) -> None:
        handle = server.open_session(user_name=f"dash-{index}")
        handle.execute(
            f"SET enable_result_cache = {'on' if cache_on else 'off'}"
        )
        for step in range(QUERIES_PER_SESSION):
            handle.execute(TEMPLATES[(index + step) % len(TEMPLATES)])
            time.sleep(THINK_S)
        handle.close()

    t0 = time.perf_counter()
    for index in range(sessions):
        thread = threading.Thread(target=client, args=(index,))
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    metrics = server.metrics()
    server.shutdown()
    # metrics.queries includes the SET per session; count only the mix.
    qps = (sessions * QUERIES_PER_SESSION) / wall
    return qps, metrics.p50_ms, metrics.p99_ms


def test_a14_concurrent_session_scaling(reporter, bench_record):
    results: dict[tuple[int, bool], tuple[float, float, float]] = {}
    for cache_on in (False, True):
        cluster = build()
        # Warm compile/segment caches so level 1 isn't charged for them.
        cluster.connect().execute(TEMPLATES[0])
        for level in LEVELS:
            results[(level, cache_on)] = drive(cluster, level, cache_on)

    lines = ["sessions | cache |      QPS |  p50 ms |  p99 ms"]
    for (level, cache_on), (qps, p50, p99) in sorted(results.items()):
        state = "on " if cache_on else "off"
        lines.append(
            f"{level:8} | {state}  | {qps:8.1f} | {p50:7.3f} | {p99:7.3f}"
        )
        bench_record(
            **{
                f"qps_s{level}_cache_{state.strip()}": round(qps, 1),
                f"p50_ms_s{level}_cache_{state.strip()}": round(p50, 3),
                f"p99_ms_s{level}_cache_{state.strip()}": round(p99, 3),
            }
        )
    reporter("a14: QPS and latency vs concurrent sessions", lines)

    # The tentpole's bar: on the read-heavy cache-on mix, 64 sessions
    # must deliver at least twice the single-session throughput.
    single = results[(1, True)][0]
    fleet = results[(64, True)][0]
    bench_record(fleet_over_single=round(fleet / single, 2))
    assert fleet >= 2.0 * single, (
        f"64-session QPS {fleet:.1f} < 2x single-session {single:.1f}"
    )
