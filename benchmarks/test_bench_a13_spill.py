"""Ablation a13 — memory-governed execution: the spill degradation curve.

The memory governor charges hash-join builds, aggregation state and sort
buffers against the admitting queue's per-slot budget and spills to
accounted temp files when it crosses the limit (grace-hash partitioning,
external merge sort). This ablation measures the price of that
robustness: the same join + group-by + sort workload at an unbounded
budget, at 50% of its measured working set, and at 10% — where every
governed operator must spill.

Acceptance bars:
* every governed run returns rows bit-identical to the unbounded run,
* the 10% run actually spills on every executor (the curve is real),
* the 10% run completes within 5x the unbounded time — spilling
  degrades throughput, it must not fall off a cliff.
"""

import time

from repro import Cluster

ROWS = 120_000
QUERY = (
    "SELECT f.a, count(*), sum(f.b), min(f.b), max(f.b) FROM f "
    "JOIN d ON f.k = d.k GROUP BY f.a ORDER BY sum(f.b) DESC, f.a"
)
EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def build(rows: int = ROWS) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE f (a int, b int, k int) DISTSTYLE EVEN"
    )
    # Group keys arrive in 16-row runs (the TPC-H lineitem pattern —
    # fact rows load clustered by their parent key). EVEN distribution
    # deals rows round-robin across the 4 slices, so each slice still
    # sees 4 consecutive rows per key; 7500 distinct groups keep the
    # full working set far above any governed budget.
    cluster.register_inline_source(
        "bench://f",
        [f"{(i // 16) % 8000}|{i}|{i % 500}" for i in range(rows)],
    )
    session.execute("COPY f FROM 'bench://f'")
    session.execute("CREATE TABLE d (k int, w int) DISTSTYLE ALL")
    cluster.register_inline_source(
        "bench://d", [f"{k}|{k * 3}" for k in range(500)]
    )
    session.execute("COPY d FROM 'bench://d'")
    return cluster


def _connect(cluster, executor: str, memory_limit=None):
    kwargs = {"memory_limit": memory_limit} if memory_limit else {}
    if executor == "parallel":
        session = cluster.connect(
            executor="parallel", parallelism=2, **kwargs
        )
    else:
        session = cluster.connect(executor=executor, **kwargs)
    session.execute("SET enable_result_cache = off")
    return session


def _timed(session, rounds: int = 2):
    """Best-of-N wall time: the curve compares ratios, so per-round
    scheduler noise would dominate a single sample."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = session.execute(QUERY)
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_a13_spill_degradation_curve(benchmark, reporter, bench_record):
    cluster = build()

    # Measure the working set: a governed run with a budget far above
    # any plausible working set never spills but records the high-water
    # mark of hash/agg/sort state.
    probe = _connect(cluster, "volcano", memory_limit=1 << 30)
    probe_result = probe.execute(QUERY)
    working_set = probe_result.stats.peak_memory_bytes
    assert probe_result.stats.spilled_bytes == 0
    assert working_set > 0

    budgets = {
        "unbounded": None,
        "50%": max(1, working_set // 2),
        "10%": max(1, working_set // 10),
    }
    lines = [
        f"working set: {working_set / 1e6:.2f} MB "
        f"(50% = {budgets['50%'] / 1e6:.2f} MB, "
        f"10% = {budgets['10%'] / 1e6:.2f} MB)",
        "executor   | unbounded |       50% |       10% | 10% spilled | slowdown",
    ]
    metrics = {"working_set_bytes": working_set}
    session = None
    for executor in EXECUTORS:
        elapsed = {}
        spilled = {}
        rows = {}
        for level, limit in budgets.items():
            session = _connect(cluster, executor, memory_limit=limit)
            session.execute("SELECT count(*) FROM f")  # warm pools/codegen
            result, seconds = _timed(session)
            elapsed[level] = seconds
            spilled[level] = result.stats.spilled_bytes
            rows[level] = result.rows

        # Spilling must be invisible to results and real at 10%.
        assert rows["50%"] == rows["unbounded"]
        assert rows["10%"] == rows["unbounded"]
        assert spilled["unbounded"] == 0
        assert spilled["10%"] > 0, executor

        slowdown = elapsed["10%"] / elapsed["unbounded"]
        lines.append(
            f"{executor:10} | {elapsed['unbounded'] * 1000:6.1f} ms | "
            f"{elapsed['50%'] * 1000:6.1f} ms | "
            f"{elapsed['10%'] * 1000:6.1f} ms | "
            f"{spilled['10%'] / 1e6:8.2f} MB | {slowdown:5.2f}x"
        )
        for level in budgets:
            tag = level.rstrip("%") if level != "unbounded" else "unbounded"
            metrics[f"{executor}_{tag}_ms"] = round(elapsed[level] * 1000, 2)
        metrics[f"{executor}_10_spilled_bytes"] = spilled["10%"]
        metrics[f"{executor}_slowdown_10"] = round(slowdown, 2)
        # The bench-smoke bar: graceful degradation, not a cliff.
        assert slowdown <= 5.0, (executor, slowdown)

    benchmark.pedantic(lambda: session.execute(QUERY), iterations=1, rounds=1)
    reporter(
        "a13 — spill degradation curve (120k-row join+group+sort)", lines
    )
    bench_record(**metrics)
