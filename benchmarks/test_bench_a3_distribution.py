"""Ablation a3 — distribution styles and join co-location (§2.1).

"Using distribution keys allows join processing on that key to be
co-located on individual slices, reducing IO, CPU and network contention
and avoiding the redistribution of intermediate results during query
execution."

Measures interconnect bytes and wall time for the same join under every
placement: KEY/KEY co-located, fact × replicated (ALL) dimension,
broadcast, and full redistribution.
"""

import time

from repro import Cluster

FACT_ROWS = 30_000
DIM_ROWS = 400


def build():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=2048)
    s = cluster.connect()
    s.execute("CREATE TABLE fact_key (k int, v int) DISTKEY(k)")
    s.execute("CREATE TABLE fact_even (k int, v int) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dim_key (k int, w int) DISTKEY(k)")
    s.execute("CREATE TABLE dim_even (k int, w int) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dim_all (k int, w int) DISTSTYLE ALL")
    cluster.register_inline_source(
        "bench://fact", [f"{i % DIM_ROWS}|{i}" for i in range(FACT_ROWS)]
    )
    cluster.register_inline_source(
        "bench://dim", [f"{i}|{i * 10}" for i in range(DIM_ROWS)]
    )
    s.execute("COPY fact_key FROM 'bench://fact'")
    s.execute("COPY fact_even FROM 'bench://fact'")
    s.execute("COPY dim_key FROM 'bench://dim'")
    s.execute("COPY dim_even FROM 'bench://dim'")
    s.execute("COPY dim_all FROM 'bench://dim'")
    return cluster, s


def test_a3_join_strategies(benchmark, reporter):
    cluster, s = build()
    cases = [
        ("KEY x KEY (co-located)", "fact_key", "dim_key"),
        ("EVEN x ALL (replicated dim)", "fact_even", "dim_all"),
        ("EVEN x EVEN (planner's choice)", "fact_even", "dim_even"),
        ("KEY x EVEN (one side placed)", "fact_key", "dim_even"),
    ]
    lines = ["placement | bcast bytes | redist bytes | time"]
    measured = {}
    for label, fact, dim in cases:
        sql = (
            f"SELECT count(*), sum(f.v) FROM {fact} f "
            f"JOIN {dim} d ON f.k = d.k"
        )
        start = time.perf_counter()
        r = s.execute(sql)
        elapsed = time.perf_counter() - start
        assert r.rows[0][0] == FACT_ROWS
        measured[label] = r.stats.network
        lines.append(
            f"{label:30s} | {r.stats.network.bytes_broadcast:11d} | "
            f"{r.stats.network.bytes_redistributed:12d} | "
            f"{elapsed * 1000:6.1f} ms"
        )
    benchmark.pedantic(
        s.execute,
        args=("SELECT count(*) FROM fact_key f JOIN dim_key d ON f.k = d.k",),
        iterations=1, rounds=1,
    )
    reporter("a3 — join data movement by distribution style", lines)

    colocated = measured["KEY x KEY (co-located)"]
    replicated = measured["EVEN x ALL (replicated dim)"]
    moved = measured["EVEN x EVEN (planner's choice)"]
    # Co-located and replicated joins avoid redistribution entirely.
    assert colocated.bytes_broadcast == colocated.bytes_redistributed == 0
    assert replicated.bytes_broadcast == replicated.bytes_redistributed == 0
    # The unplaced join must move data.
    assert moved.bytes_broadcast + moved.bytes_redistributed > 0


def test_a3_planner_prefers_cheaper_movement(benchmark, reporter):
    """With a small dim the planner broadcasts it; the alternative
    (shuffling the big fact) would cost orders of magnitude more bytes."""
    cluster, s = build()
    r = benchmark(
        s.execute,
        "SELECT count(*) FROM fact_even f JOIN dim_even d ON f.k = d.k",
    )
    fact_bytes = FACT_ROWS * 8  # two int columns at 4B each
    reporter(
        "a3 — broadcast-vs-shuffle choice",
        [
            f"broadcast bytes (chosen): {r.stats.network.bytes_broadcast:,d}",
            f"shuffle-fact alternative: ≈{fact_bytes:,d}",
        ],
    )
    assert 0 < r.stats.network.bytes_broadcast < fact_bytes


def test_a3_all_distribution_storage_cost(benchmark, reporter):
    """The flip side of DISTSTYLE ALL: storage multiplies by slice count."""
    cluster, s = build()
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    even_bytes = cluster.table_bytes("dim_even")
    all_bytes = cluster.table_bytes("dim_all")
    reporter(
        "a3 — replication storage cost",
        [
            f"dim EVEN: {even_bytes:,d} bytes",
            f"dim ALL:  {all_bytes:,d} bytes "
            f"({all_bytes / even_bytes:.1f}x, slices={cluster.slice_count})",
        ],
    )
    assert all_bytes > even_bytes * (cluster.slice_count - 1)
