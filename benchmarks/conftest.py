"""Benchmark fixtures, the results reporter, and the JSON perf trajectory.

Every benchmark regenerates one paper artefact (figure/table) or ablation.
Besides pytest-benchmark's timing table, each writes its paper-shaped
series through :func:`report`, collected into ``benchmarks/RESULTS.md`` at
session end so the regenerated numbers are inspectable after a
``--benchmark-only`` run (where stdout is captured).

Every bench file additionally emits a machine-readable
``bench-results/BENCH_<id>.json`` (the id comes from the file name,
``test_bench_<id>_*.py``): wall seconds per test, plus whatever metrics
the test attached through the :func:`bench_record` fixture (rows, blocks
read/skipped, cache hits). CI uploads these next to the junit files so
perf trajectories can be diffed across commits without parsing logs.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field

import pytest

from repro import Cluster

def pytest_addoption(parser):
    parser.addoption(
        "--parallel-bench",
        action="store_true",
        default=False,
        help="enforce a11's parallel-speedup bar even when os.cpu_count() "
        "reports fewer than 4 cores (containers often under-report; pass "
        "this on a local machine that really has the cores)",
    )


_REPORTS: list[str] = []

#: bench id -> test name -> {"seconds": float, **attached metrics}
_BENCH_JSON: dict[str, dict[str, dict]] = {}

_BENCH_ID = re.compile(r"test_bench_([a-z0-9]+)_")


def _bench_id(request) -> str | None:
    match = _BENCH_ID.match(os.path.basename(str(request.node.fspath)))
    return match.group(1) if match else None


@pytest.fixture(autouse=True)
def _result_cache_off(monkeypatch):
    """Benchmarks measure the execution path, so repeated identical
    queries must really execute — Redshift's own benchmarking guidance
    is ``SET enable_result_cache TO off``. Flipping the parameter-group
    default keeps every bench honest; a12 (the result-cache ablation)
    turns it back on per session."""
    monkeypatch.setattr(Cluster, "enable_result_cache_default", False)


@pytest.fixture(autouse=True)
def _bench_json_entry(request):
    """Time every benchmark test and register it in the JSON trajectory."""
    bench = _bench_id(request)
    if bench is None:
        yield
        return
    entry = _BENCH_JSON.setdefault(bench, {}).setdefault(
        request.node.name, {}
    )
    start = time.perf_counter()
    yield
    entry["seconds"] = round(time.perf_counter() - start, 6)


@pytest.fixture
def bench_record(request):
    """Attach metrics to the current test's BENCH_<id>.json entry.

    Usage: ``bench_record(rows=..., blocks_read=..., cache_hits=...)``;
    repeated calls merge, and a ``QueryResult``-shaped ``stats`` keyword
    expands into the standard scan counters.
    """
    bench = _bench_id(request)
    entry = _BENCH_JSON.setdefault(bench or "misc", {}).setdefault(
        request.node.name, {}
    )

    def record(stats=None, **metrics):
        if stats is not None:
            scan = stats.scan
            metrics.setdefault("rows", stats.rows_returned)
            metrics.update(
                blocks_read=scan.blocks_read,
                blocks_skipped=scan.blocks_skipped,
                chains_read=scan.chains_read,
                cache_hits=scan.cache_hits,
                cache_misses=scan.cache_misses,
                encoded_batches=scan.encoded_batches,
                decode_bytes_avoided=scan.decode_bytes_avoided,
            )
        entry.update(metrics)

    return record


def report(title: str, lines: list[str]) -> None:
    """Record one experiment's regenerated table/series."""
    block = [f"## {title}", ""]
    block.extend(lines)
    block.append("")
    _REPORTS.extend(block)
    print("\n".join(block))


@pytest.fixture
def reporter():
    return report


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_JSON:
        out_dir = os.path.join(os.path.dirname(__file__), "bench-results")
        os.makedirs(out_dir, exist_ok=True)
        for bench, tests in sorted(_BENCH_JSON.items()):
            payload = {
                "bench": bench,
                "recorded_at": time.time(),
                "tests": tests,
            }
            path = os.path.join(out_dir, f"BENCH_{bench}.json")
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
    if not _REPORTS:
        return
    path = os.path.join(os.path.dirname(__file__), "RESULTS.md")
    with open(path, "w") as fh:
        fh.write("# Regenerated paper artefacts\n\n")
        fh.write("\n".join(_REPORTS))
        fh.write("\n")


@dataclass
class BenchCluster:
    """A cluster pre-loaded with the shared benchmark dataset."""

    cluster: Cluster
    rows: int

    def session(self, executor: str = "compiled"):
        return self.cluster.connect(executor)


@pytest.fixture(scope="module")
def bench_cluster() -> BenchCluster:
    """40k-row events table, sorted on ts, KEY-distributed on product."""
    rows = 40_000
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=2048)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE events (ts int, product_id int, user_id int, "
        "amount float, category varchar(12)) "
        "DISTKEY(product_id) SORTKEY(ts)"
    )
    session.execute(
        "CREATE TABLE products (product_id int, name varchar(16), "
        "price float) DISTKEY(product_id)"
    )
    cluster.register_inline_source(
        "bench://events",
        [
            f"{i}|{i % 500}|{i % 977}|{(i % 41) * 1.5}|cat-{i % 9}"
            for i in range(rows)
        ],
    )
    cluster.register_inline_source(
        "bench://products",
        [f"{i}|prod-{i}|{(i % 30) * 3.0}" for i in range(500)],
    )
    session.execute("COPY products FROM 'bench://products'")
    session.execute("COPY events FROM 'bench://events'")
    return BenchCluster(cluster=cluster, rows=rows)
