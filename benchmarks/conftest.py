"""Benchmark fixtures and the results reporter.

Every benchmark regenerates one paper artefact (figure/table) or ablation.
Besides pytest-benchmark's timing table, each writes its paper-shaped
series through :func:`report`, collected into ``benchmarks/RESULTS.md`` at
session end so the regenerated numbers are inspectable after a
``--benchmark-only`` run (where stdout is captured).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import pytest

from repro import Cluster

_REPORTS: list[str] = []


def report(title: str, lines: list[str]) -> None:
    """Record one experiment's regenerated table/series."""
    block = [f"## {title}", ""]
    block.extend(lines)
    block.append("")
    _REPORTS.extend(block)
    print("\n".join(block))


@pytest.fixture
def reporter():
    return report


def pytest_sessionfinish(session, exitstatus):
    if not _REPORTS:
        return
    path = os.path.join(os.path.dirname(__file__), "RESULTS.md")
    with open(path, "w") as fh:
        fh.write("# Regenerated paper artefacts\n\n")
        fh.write("\n".join(_REPORTS))
        fh.write("\n")


@dataclass
class BenchCluster:
    """A cluster pre-loaded with the shared benchmark dataset."""

    cluster: Cluster
    rows: int

    def session(self, executor: str = "compiled"):
        return self.cluster.connect(executor)


@pytest.fixture(scope="module")
def bench_cluster() -> BenchCluster:
    """40k-row events table, sorted on ts, KEY-distributed on product."""
    rows = 40_000
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=2048)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE events (ts int, product_id int, user_id int, "
        "amount float, category varchar(12)) "
        "DISTKEY(product_id) SORTKEY(ts)"
    )
    session.execute(
        "CREATE TABLE products (product_id int, name varchar(16), "
        "price float) DISTKEY(product_id)"
    )
    cluster.register_inline_source(
        "bench://events",
        [
            f"{i}|{i % 500}|{i % 977}|{(i % 41) * 1.5}|cat-{i % 9}"
            for i in range(rows)
        ],
    )
    cluster.register_inline_source(
        "bench://products",
        [f"{i}|prod-{i}|{(i % 30) * 3.0}" for i in range(500)],
    )
    session.execute("COPY products FROM 'bench://products'")
    session.execute("COPY events FROM 'bench://events'")
    return BenchCluster(cluster=cluster, rows=rows)
