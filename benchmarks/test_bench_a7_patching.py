"""Ablation a7 — patch cadence vs failure probability (§5).

"We typically push new database engine software ... every two weeks. We
have found reducing this pace, for example to every four weeks,
meaningfully increased the probability of a failed patch."

Sweeps the release cadence, measures per-release failure probability and
the auto-rollback machinery's containment of a bad release.
"""

from repro.cloud import CloudEnvironment
from repro.controlplane import PatchManager, PatchOutcome, RedshiftService
from repro.util.units import MINUTE


def test_a7_cadence_sweep(benchmark, reporter):
    service = RedshiftService(CloudEnvironment(seed=17))
    pm = PatchManager(service, seed="cadence-sweep")
    results = [
        pm.simulate_cadence(weeks, horizon_weeks=520, trials=40)
        for weeks in (1, 2, 4, 8)
    ]
    benchmark.pedantic(
        pm.simulate_cadence, args=(2, 104), kwargs={"trials": 5},
        iterations=1, rounds=1,
    )
    lines = ["cadence | changes/release | P(failed release) | measured"]
    for r in results:
        changes = round(PatchManager.CHANGES_PER_WEEK * r["cadence_weeks"])
        lines.append(
            f"{r['cadence_weeks']:4.0f} wk | {changes:15d} | "
            f"{r['per_release_probability']:17.1%} | {r['failure_rate']:.1%}"
        )
    reporter("a7 — release cadence vs failure probability", lines)

    rates = [r["failure_rate"] for r in results]
    assert rates == sorted(rates)
    two_week = results[1]["failure_rate"]
    four_week = results[2]["failure_rate"]
    # The paper's concrete claim: 4-weekly "meaningfully increased".
    assert four_week > two_week * 1.6


def test_a7_rollback_containment(benchmark, reporter):
    """A regressive release must be reverted inside the 30-minute window
    on every cluster, leaving at most two fleet versions."""
    env = CloudEnvironment(seed=18)
    env.ec2.preconfigure("dw2.large", 16)
    service = RedshiftService(env)
    for _ in range(5):
        service.create_cluster(node_count=2, block_capacity=64)
    pm = PatchManager(service, seed=4)
    pm.accumulate_development(2)
    release = pm.cut_release()
    release.regressive = True

    records = benchmark.pedantic(
        pm.patch_fleet, args=(release,), iterations=1, rounds=1
    )
    rolled_back = [r for r in records if r.outcome is PatchOutcome.ROLLED_BACK]
    worst_window = max(r.window_seconds for r in records)
    reporter(
        "a7 — auto-rollback of a regressive release",
        [
            f"clusters patched: {len(records)}",
            f"rolled back: {len(rolled_back)} (100% of a bad release)",
            f"worst window: {worst_window / MINUTE:.0f} min (limit: 30)",
            f"fleet versions after: {sorted(service.fleet_versions())}",
        ],
    )
    assert len(rolled_back) == len(records)
    assert worst_window <= 30 * MINUTE
    assert pm.fleet_version_invariant_holds()


def test_a7_steady_state_two_versions(benchmark, reporter):
    """A year of biweekly trains never leaves >2 versions in the fleet."""
    env = CloudEnvironment(seed=19)
    env.ec2.preconfigure("dw2.large", 16)
    service = RedshiftService(env)
    for _ in range(4):
        service.create_cluster(node_count=2, block_capacity=64)
    pm = PatchManager(service, seed=6)

    def year_of_patching():
        outcomes = []
        for _train in range(26):
            pm.accumulate_development(2)
            release = pm.cut_release()
            outcomes.extend(pm.patch_fleet(release))
            assert pm.fleet_version_invariant_holds()
        return outcomes

    outcomes = benchmark.pedantic(year_of_patching, iterations=1, rounds=1)
    failed = sum(1 for o in outcomes if o.outcome is PatchOutcome.ROLLED_BACK)
    reporter(
        "a7 — a year of biweekly releases",
        [
            f"patch applications: {len(outcomes)}",
            f"rolled back: {failed} "
            f"({failed / len(outcomes):.1%} of applications)",
            "two-version invariant held at every step",
        ],
    )
    assert pm.fleet_version_invariant_holds()
