"""Figure 4 — Cumulative features deployed over time.

Regenerates the two-year cumulative-feature curve under the paper's
stated delivery process (two-week release trains, ~1 feature/week on
average, accelerating as the team grows).
"""

from repro.ops import FeatureDeliveryModel


def test_fig4_cumulative_features(benchmark, reporter):
    model = FeatureDeliveryModel(seed="fig4")
    releases = benchmark(model.simulate, 104)

    lines = ["week | features this release | cumulative"]
    for release in releases:
        if release.week % 13 == 0:  # quarterly samples for the table
            lines.append(
                f"{release.week:4.0f} | {release.features:21d} | "
                f"{release.cumulative:10d}"
            )
    lines.append(
        f"total after 2 years: {releases[-1].cumulative} "
        f"(paper: 'one feature per week' ≈ 104)"
    )
    reporter("Figure 4 — cumulative features deployed", lines)

    # Paper shape: ~1/week average over two years...
    total = releases[-1].cumulative
    assert 80 <= total <= 170
    # ...strictly non-decreasing...
    cumulative = [r.cumulative for r in releases]
    assert cumulative == sorted(cumulative)
    # ...and convex-ish: the second year delivers at least as much as the
    # first (the team grows; the paper's curve steepens).
    first_year = model.features_at(releases, 52)
    second_year = total - first_year
    assert second_year >= first_year * 0.9


def test_fig4_cadence_consistency(reporter, benchmark):
    """A 2-week train over 2 years is exactly 52 releases."""
    releases = benchmark(
        FeatureDeliveryModel(release_interval_weeks=2, seed=1).simulate, 104
    )
    assert len(releases) == 52
    reporter(
        "Figure 4 — release train count",
        [f"releases in 104 weeks at 2-week cadence: {len(releases)}"],
    )
