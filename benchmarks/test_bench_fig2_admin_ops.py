"""Figure 2 — Time to deploy and manage a cluster, by cluster size.

Regenerates the paper's bar chart: deploy / connect / backup / restore /
resize(2→16) durations for 2-, 16- and 128-node clusters, split into
"time spent on clicks" versus automated time. The paper's qualitative
claims: every operation fits tens of minutes even at 128 nodes, click
time is a small constant, and durations grow sublinearly with node count
because the work is parallel per node.
"""

import pytest

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.util.units import MINUTE, format_duration


def run_admin_suite(node_count: int) -> dict:
    env = CloudEnvironment(seed=100 + node_count)
    env.ec2.preconfigure("dw2.large", node_count * 3 + 16)
    service = RedshiftService(env)

    managed, deploy = service.create_cluster(
        node_count=node_count, slices_per_node=2, block_capacity=256
    )
    connect = service.connect_timing(managed.cluster_id)

    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    # Data volume scales with cluster size (bigger clusters hold more).
    per_node_rows = 2000
    rows = ",".join(
        f"({i}, {i})" for i in range(per_node_rows * node_count)
    )
    session.execute(f"INSERT INTO t VALUES {rows}")

    _, backup = service.snapshot_cluster(managed.cluster_id, label=f"s{node_count}")
    _, _, restore = service.restore_cluster(
        managed.cluster_id, f"s{node_count}", streaming=True
    )
    resize_target = max(1, node_count * 2 if node_count <= 16 else node_count)
    _, resize = service.resize_cluster(managed.cluster_id, resize_target)
    return {
        "deploy": deploy,
        "connect": connect,
        "backup": backup,
        "restore": restore,
        "resize": resize,
    }


@pytest.mark.parametrize("node_count", [2, 16])
def test_fig2_admin_operations(benchmark, reporter, node_count):
    timings = benchmark.pedantic(
        run_admin_suite, args=(node_count,), iterations=1, rounds=1
    )
    lines = [
        "operation | clicks | automated | total",
    ]
    for name, timing in timings.items():
        lines.append(
            f"{name:8s} | {timing.click_seconds:5.0f}s | "
            f"{format_duration(timing.automated_seconds):>9s} | "
            f"{format_duration(timing.total_seconds):>9s}"
        )
    reporter(f"Figure 2 — admin operations, {node_count} nodes", lines)

    # Paper shape: everything completes within tens of minutes...
    for name, timing in timings.items():
        assert timing.total_seconds < 35 * MINUTE, (name, timing.total_seconds)
    # ...and clicks are a small constant slice of each operation.
    for timing in timings.values():
        assert timing.click_seconds <= 2 * MINUTE


def test_fig2_sublinear_scaling(reporter, benchmark):
    """Durations must grow far slower than node count (parallel admin)."""
    small = benchmark.pedantic(
        run_admin_suite, args=(2,), iterations=1, rounds=1
    )
    large = run_admin_suite(16)
    lines = ["operation | 2 nodes | 16 nodes | ratio (≤8x would be linear)"]
    for name in small:
        a = small[name].automated_seconds
        b = large[name].automated_seconds
        lines.append(
            f"{name:8s} | {a:7.0f}s | {b:8.0f}s | {b / max(a, 1e-9):.2f}x"
        )
        # 8x more nodes must NOT cost 8x the time.
        assert b < a * 4, (name, a, b)
    reporter("Figure 2 — scaling 2 → 16 nodes", lines)
