"""Ablation a10 — vectorized batch execution and the block-decode cache.

The paper credits Redshift's scan speed to compiled execution over
columnar blocks (§2.1). This ablation adds the third engine point:
column-vector batches. One decoded block per kernel invocation amortizes
interpreter overhead the same way codegen does, and the shared
block-decode cache removes repeat decode cost entirely on warm reruns.

Measures all three executors on the a2 aggregation workload, then the
cold-vs-warm effect of the decode cache, with hit counters checked
through ``stv_block_cache`` and EXPLAIN ANALYZE.
"""

import time

from repro import Cluster

ROWS = 120_000
QUERY = (
    "SELECT a, count(*), sum(b), avg(c) FROM f "
    "WHERE b > 10000 AND c < 40.0 GROUP BY a"
)


def build(rows: int = ROWS) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("CREATE TABLE f (a int, b int, c float) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(rows)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster


def run_timed(cluster, executor: str, repeats: int = 3):
    session = cluster.connect(executor)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(QUERY)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_a10_three_way_aggregation(benchmark, reporter, bench_record):
    cluster = build()
    volcano_s, volcano_r = run_timed(cluster, "volcano")
    compiled_s, _ = run_timed(cluster, "compiled")
    vectorized_s, vectorized_r = run_timed(cluster, "vectorized")
    benchmark.pedantic(
        lambda: cluster.connect("vectorized").execute(QUERY),
        iterations=1, rounds=1,
    )
    normalize = lambda rows: sorted(  # noqa: E731
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    )
    assert normalize(vectorized_r.rows) == normalize(volcano_r.rows)
    reporter(
        "a10 — executor comparison, 120k-row filtered aggregation",
        [
            "executor   | best of 3 | speedup vs volcano",
            f"volcano    | {volcano_s * 1000:7.1f} ms | 1.0x",
            f"compiled   | {compiled_s * 1000:7.1f} ms | "
            f"{volcano_s / compiled_s:.2f}x",
            f"vectorized | {vectorized_s * 1000:7.1f} ms | "
            f"{volcano_s / vectorized_s:.2f}x",
        ],
    )
    bench_record(
        stats=vectorized_r.stats,
        volcano_ms=round(volcano_s * 1000, 3),
        compiled_ms=round(compiled_s * 1000, 3),
        vectorized_ms=round(vectorized_s * 1000, 3),
    )
    # The acceptance bar: batching must beat per-row interpretation by 2x.
    assert vectorized_s < volcano_s / 2


def test_a10_decode_cache_warm_vs_cold(benchmark, reporter, bench_record):
    cluster = build(60_000)
    session = cluster.connect("vectorized")

    t0 = time.perf_counter()
    cold = session.execute(QUERY)
    cold_s = time.perf_counter() - t0
    assert cold.stats.scan.cache_hits == 0
    assert cold.stats.scan.cache_misses > 0

    warm_s = float("inf")
    warm = None
    for _ in range(3):
        t0 = time.perf_counter()
        warm = session.execute(QUERY)
        warm_s = min(warm_s, time.perf_counter() - t0)
    benchmark.pedantic(
        lambda: session.execute(QUERY), iterations=1, rounds=1
    )
    assert warm.stats.scan.cache_misses == 0
    assert warm.stats.scan.cache_hits == cold.stats.scan.cache_misses
    assert warm_s < cold_s

    hits, misses = session.execute(
        "SELECT hits, misses FROM stv_block_cache"
    ).rows[0]
    assert hits > 0 and misses > 0
    plan = "\n".join(
        row[0] for row in session.execute(f"EXPLAIN ANALYZE {QUERY}").rows
    )
    assert "Block decode cache:" in plan

    reporter(
        "a10 — block-decode cache, cold vs warm (60k rows)",
        [
            f"cold run: {cold_s * 1000:6.1f} ms "
            f"({cold.stats.scan.cache_misses} block decodes)",
            f"warm run: {warm_s * 1000:6.1f} ms "
            f"({warm.stats.scan.cache_hits} cache hits, 0 decodes)",
            f"speedup: {cold_s / warm_s:.2f}x",
        ],
    )
    bench_record(
        stats=warm.stats,
        cold_ms=round(cold_s * 1000, 3),
        warm_ms=round(warm_s * 1000, 3),
    )


def test_a10_invalidation_keeps_cache_honest(reporter, bench_record):
    """VACUUM-style rewrites retire cached entries: the next scan decodes
    fresh blocks rather than serving stale vectors."""
    cluster = build(20_000)
    session = cluster.connect("vectorized")
    session.execute(QUERY)
    session.execute(QUERY)  # warm
    invalidations_before = cluster.block_cache.invalidations
    session.execute("VACUUM f")
    assert cluster.block_cache.invalidations > invalidations_before
    after = session.execute(QUERY)
    assert after.stats.scan.cache_misses > 0
    reporter(
        "a10 — rewrite invalidation",
        [
            f"entries invalidated by rewrite: "
            f"{cluster.block_cache.invalidations - invalidations_before}",
            f"post-rewrite decodes: {after.stats.scan.cache_misses}",
        ],
    )
    bench_record(stats=after.stats)
