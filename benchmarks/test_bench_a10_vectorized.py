"""Ablation a10 — vectorized batch execution and the block-decode cache.

The paper credits Redshift's scan speed to compiled execution over
columnar blocks (§2.1). This ablation adds the third engine point:
column-vector batches. One decoded block per kernel invocation amortizes
interpreter overhead the same way codegen does, and the shared
block-decode cache removes repeat decode cost entirely on warm reruns.

Measures all three executors on the a2 aggregation workload, then the
cold-vs-warm effect of the decode cache, with hit counters checked
through ``stv_block_cache`` and EXPLAIN ANALYZE.

The operate-on-compressed ablation compares cold-scan throughput with
``enable_encoded_scan`` on vs off over dict/RLE-friendly data: on, the
vectorized kernels evaluate predicates on dictionary codes and fold RLE
runs without ever expanding the blocks (DESIGN.md §13); off pins the
decode-first path. The decode-cache tests run with encoded scans off —
their hit/miss arithmetic is about the decode path, which encoded scans
deliberately bypass (an encoded read is neither a hit nor a miss).
"""

import time

from repro import Cluster

ROWS = 120_000
QUERY = (
    "SELECT a, count(*), sum(b), avg(c) FROM f "
    "WHERE b > 10000 AND c < 40.0 GROUP BY a"
)


def build(rows: int = ROWS) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("CREATE TABLE f (a int, b int, c float) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(rows)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster


def run_timed(cluster, executor: str, repeats: int = 3):
    session = cluster.connect(executor)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(QUERY)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_a10_three_way_aggregation(benchmark, reporter, bench_record):
    cluster = build()
    volcano_s, volcano_r = run_timed(cluster, "volcano")
    compiled_s, _ = run_timed(cluster, "compiled")
    vectorized_s, vectorized_r = run_timed(cluster, "vectorized")
    benchmark.pedantic(
        lambda: cluster.connect("vectorized").execute(QUERY),
        iterations=1, rounds=1,
    )
    normalize = lambda rows: sorted(  # noqa: E731
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    )
    assert normalize(vectorized_r.rows) == normalize(volcano_r.rows)
    reporter(
        "a10 — executor comparison, 120k-row filtered aggregation",
        [
            "executor   | best of 3 | speedup vs volcano",
            f"volcano    | {volcano_s * 1000:7.1f} ms | 1.0x",
            f"compiled   | {compiled_s * 1000:7.1f} ms | "
            f"{volcano_s / compiled_s:.2f}x",
            f"vectorized | {vectorized_s * 1000:7.1f} ms | "
            f"{volcano_s / vectorized_s:.2f}x",
        ],
    )
    bench_record(
        stats=vectorized_r.stats,
        volcano_ms=round(volcano_s * 1000, 3),
        compiled_ms=round(compiled_s * 1000, 3),
        vectorized_ms=round(vectorized_s * 1000, 3),
    )
    # The acceptance bar: batching must beat per-row interpretation by 2x.
    assert vectorized_s < volcano_s / 2


def test_a10_decode_cache_warm_vs_cold(benchmark, reporter, bench_record):
    cluster = build(60_000)
    session = cluster.connect("vectorized")
    session.execute("SET enable_encoded_scan = off")

    t0 = time.perf_counter()
    cold = session.execute(QUERY)
    cold_s = time.perf_counter() - t0
    assert cold.stats.scan.cache_hits == 0
    assert cold.stats.scan.cache_misses > 0

    warm_s = float("inf")
    warm = None
    for _ in range(3):
        t0 = time.perf_counter()
        warm = session.execute(QUERY)
        warm_s = min(warm_s, time.perf_counter() - t0)
    benchmark.pedantic(
        lambda: session.execute(QUERY), iterations=1, rounds=1
    )
    assert warm.stats.scan.cache_misses == 0
    assert warm.stats.scan.cache_hits == cold.stats.scan.cache_misses
    assert warm_s < cold_s

    hits, misses = session.execute(
        "SELECT hits, misses FROM stv_block_cache"
    ).rows[0]
    assert hits > 0 and misses > 0
    plan = "\n".join(
        row[0] for row in session.execute(f"EXPLAIN ANALYZE {QUERY}").rows
    )
    assert "Block decode cache:" in plan

    reporter(
        "a10 — block-decode cache, cold vs warm (60k rows)",
        [
            f"cold run: {cold_s * 1000:6.1f} ms "
            f"({cold.stats.scan.cache_misses} block decodes)",
            f"warm run: {warm_s * 1000:6.1f} ms "
            f"({warm.stats.scan.cache_hits} cache hits, 0 decodes)",
            f"speedup: {cold_s / warm_s:.2f}x",
        ],
    )
    bench_record(
        stats=warm.stats,
        cold_ms=round(cold_s * 1000, 3),
        warm_ms=round(warm_s * 1000, 3),
    )


ENC_ROWS = 120_000
#: Dict-pushdown workload: a selective predicate on a bytedict column —
#: one literal translation, then a code-table lookup per row.
ENC_QUERY_DICT = "SELECT count(*) FROM g WHERE k = 7"
#: RLE-fold workload: whole-column aggregates folded run-by-run.
ENC_QUERY_RLE = "SELECT count(*), sum(r), min(r), max(r) FROM g"


def build_encoded(rows: int = ENC_ROWS) -> Cluster:
    """Dict/RLE-friendly table with explicit (authoritative) encodings."""
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE g (k int encode bytedict, r int encode runlength, "
        "v int encode mostly16) DISTSTYLE EVEN"
    )
    cluster.register_inline_source(
        "bench://g",
        [f"{i % 23}|{i // 200}|{i % 30000}" for i in range(rows)],
    )
    session.execute("COPY g FROM 'bench://g'")
    return cluster


def _chill(cluster) -> None:
    """Forget all decode work so the next scan is genuinely cold. The
    shared decode cache is the only place decoded vectors are retained
    (blocks deliberately carry no decode memo — DESIGN.md §13)."""
    cluster.block_cache.clear()


def run_cold(session, cluster, query: str, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        _chill(cluster)
        start = time.perf_counter()
        result = session.execute(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_a10_encoded_vs_decoded_cold_scan(benchmark, reporter, bench_record):
    """Operate-on-compressed vs decode-first, both decode-cold each run.

    The acceptance bar (CI-enforced): with ``enable_encoded_scan`` on,
    cold scans over dict/RLE-friendly data must beat the decode-first
    path by 1.5x, and the encoded counters must show the pushdown
    actually happened (this is not allowed to silently regress to the
    fallback and win on noise).
    """
    cluster = build_encoded()
    try:
        session = cluster.connect("vectorized")
        session.execute("SET enable_encoded_scan = off")
        decoded_dict_s, decoded_dict_r = run_cold(
            session, cluster, ENC_QUERY_DICT
        )
        decoded_rle_s, decoded_rle_r = run_cold(
            session, cluster, ENC_QUERY_RLE
        )
        session.execute("SET enable_encoded_scan = on")
        encoded_dict_s, encoded_dict_r = run_cold(
            session, cluster, ENC_QUERY_DICT
        )
        encoded_rle_s, encoded_rle_r = run_cold(
            session, cluster, ENC_QUERY_RLE
        )
        benchmark.pedantic(
            lambda: (_chill(cluster), session.execute(ENC_QUERY_DICT)),
            iterations=1, rounds=1,
        )

        # Bit-identical results on both paths (integer aggregates).
        assert encoded_dict_r.rows == decoded_dict_r.rows
        assert encoded_rle_r.rows == decoded_rle_r.rows
        # The decoded runs must not have touched the encoded path, and
        # the encoded runs must really have operated on compressed data.
        assert decoded_dict_r.stats.scan.encoded_batches == 0
        assert encoded_dict_r.stats.scan.encoded_batches > 0
        assert encoded_rle_r.stats.scan.decode_bytes_avoided > 0
        assert "bytedict" in encoded_dict_r.stats.scan.encoding
        assert "runlength" in encoded_rle_r.stats.scan.encoding

        reporter(
            "a10 — operate-on-compressed vs decode-first cold scans "
            f"({ENC_ROWS // 1000}k rows)",
            [
                "workload      | decode-first | encoded | speedup",
                f"dict-pushdown | {decoded_dict_s * 1000:9.1f} ms | "
                f"{encoded_dict_s * 1000:5.1f} ms | "
                f"{decoded_dict_s / encoded_dict_s:.2f}x",
                f"rle-fold      | {decoded_rle_s * 1000:9.1f} ms | "
                f"{encoded_rle_s * 1000:5.1f} ms | "
                f"{decoded_rle_s / encoded_rle_s:.2f}x",
            ],
        )
        bench_record(
            stats=encoded_rle_r.stats,
            decoded_dict_ms=round(decoded_dict_s * 1000, 3),
            encoded_dict_ms=round(encoded_dict_s * 1000, 3),
            decoded_rle_ms=round(decoded_rle_s * 1000, 3),
            encoded_rle_ms=round(encoded_rle_s * 1000, 3),
            speedup_dict=round(decoded_dict_s / encoded_dict_s, 3),
            speedup_rle=round(decoded_rle_s / encoded_rle_s, 3),
        )
        # Acceptance bars: operate-on-compressed must beat decode-first
        # by 1.5x on both the dict and the RLE workload.
        assert encoded_dict_s < decoded_dict_s / 1.5
        assert encoded_rle_s < decoded_rle_s / 1.5
    finally:
        cluster.close()


def test_a10_invalidation_keeps_cache_honest(reporter, bench_record):
    """VACUUM-style rewrites retire cached entries: the next scan decodes
    fresh blocks rather than serving stale vectors."""
    cluster = build(20_000)
    session = cluster.connect("vectorized")
    session.execute("SET enable_encoded_scan = off")
    session.execute(QUERY)
    session.execute(QUERY)  # warm
    invalidations_before = cluster.block_cache.invalidations
    session.execute("VACUUM f")
    assert cluster.block_cache.invalidations > invalidations_before
    after = session.execute(QUERY)
    assert after.stats.scan.cache_misses > 0
    reporter(
        "a10 — rewrite invalidation",
        [
            f"entries invalidated by rewrite: "
            f"{cluster.block_cache.invalidations - invalidations_before}",
            f"post-rewrite decodes: {after.stats.scan.cache_misses}",
        ],
    )
    bench_record(stats=after.stats)
