"""Ablation a5 — automatic compression selection (§2.1, §3.3).

"We automatically pick compression types based on data sampling" — the
flagship "dusty knob". Measures (i) compression ratios by codec on
realistic column shapes, (ii) the analyzer's regret vs the oracle (best
codec per column), and (iii) the end-to-end footprint effect through the
COPY path.
"""

import datetime

from repro import Cluster
from repro.compression import CompressionAnalyzer, analyze_column, codec_by_name
from repro.datatypes import BIGINT, DATE, varchar_type


def column_zoo():
    """Realistic warehouse column shapes."""
    n = 8000
    return {
        "sequence_id": (BIGINT, list(range(n))),
        "fk_low_card": (BIGINT, [i % 37 for i in range(n)]),
        "status": (varchar_type(16), [
            ("active", "expired", "pending")[i % 3] for i in range(n)
        ]),
        "url": (varchar_type(64), [
            f"http://shop.example.com/item/{i % 900}" for i in range(n)
        ]),
        "event_date": (DATE, [
            datetime.date(2015, 1, 1) + datetime.timedelta(days=i // 400)
            for i in range(n)
        ]),
        "noise": (BIGINT, [
            hash((i, "salt")) % (2 ** 60) for i in range(n)
        ]),
    }


def test_a5_analyzer_picks_near_oracle(benchmark, reporter):
    zoo = column_zoo()
    analyses = {}
    for name, (sql_type, values) in zoo.items():
        analyses[name] = analyze_column(name, sql_type, values)
    benchmark.pedantic(
        analyze_column, args=("sequence_id", BIGINT, zoo["sequence_id"][1]),
        iterations=1, rounds=1,
    )

    lines = ["column | chosen | ratio vs raw | regret vs oracle"]
    for name, analysis in analyses.items():
        chosen = analysis.trial(analysis.chosen_codec)
        lines.append(
            f"{name:12s} | {analysis.chosen_codec:9s} | "
            f"{chosen.ratio_vs_raw:11.2f}x | {analysis.regret:.3f}"
        )
    reporter("a5 — analyzer choices on the column zoo", lines)

    # The dusty-knob claim: the automatic choice is near-oracle everywhere.
    for name, analysis in analyses.items():
        assert analysis.regret < 1.25, (name, analysis.regret)
    # Structured columns compress substantially...
    assert analyses["sequence_id"].trial(
        analyses["sequence_id"].chosen_codec
    ).ratio_vs_raw > 3
    assert analyses["status"].trial(
        analyses["status"].chosen_codec
    ).ratio_vs_raw > 3
    # ...and the analyzer refuses to pessimize random data.
    assert analyses["noise"].chosen_codec == "raw"


def test_a5_sampling_cost_vs_full_scan(benchmark, reporter):
    """Analysis samples; it must not scale with load size."""
    import time

    values = list(range(400_000))
    start = time.perf_counter()
    small = analyze_column("c", BIGINT, values[:4000])
    small_s = time.perf_counter() - start
    start = time.perf_counter()
    large = analyze_column("c", BIGINT, values)
    large_s = time.perf_counter() - start
    benchmark.pedantic(
        analyze_column, args=("c", BIGINT, values), iterations=1, rounds=1
    )
    reporter(
        "a5 — sampling keeps analysis O(sample), not O(load)",
        [
            f"4k values: {small_s * 1000:.1f} ms; 400k values: "
            f"{large_s * 1000:.1f} ms (100x data, {large_s / small_s:.1f}x time)",
            f"both choose {small.chosen_codec!r}/{large.chosen_codec!r}",
        ],
    )
    assert large.chosen_codec == small.chosen_codec
    assert large_s < small_s * 20  # far sublinear in load size


def test_a5_end_to_end_footprint(benchmark, reporter):
    """The COPY-time effect: auto-compressed tables are much smaller."""
    def load(compupdate: bool) -> int:
        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=2048)
        s = cluster.connect()
        s.execute(
            "CREATE TABLE t (id bigint, fk bigint, status varchar(16), "
            "day date)"
        )
        cluster.register_inline_source(
            "bench://t",
            [
                f"{i}|{i % 37}|{('active', 'expired')[i % 2]}|2015-01-01"
                for i in range(20_000)
            ],
        )
        option = "" if compupdate else " COMPUPDATE OFF"
        s.execute(f"COPY t FROM 'bench://t'{option}")
        return cluster.table_bytes("t")

    compressed = benchmark.pedantic(load, args=(True,), iterations=1, rounds=1)
    raw = load(False)
    reporter(
        "a5 — end-to-end table footprint",
        [
            f"auto-compressed: {compressed:,d} bytes",
            f"uncompressed:    {raw:,d} bytes",
            f"reduction: {raw / compressed:.1f}x",
        ],
    )
    assert compressed < raw / 2
