"""Ablation a16 — concurrency-scaling burst clusters under fleet load.

The paper's elasticity argument: when a warehouse saturates, the
managed service should attach more compute transparently rather than
shed queries at the WLM gate. This ablation replays the same
64-session read fleet twice against a deliberately undersized WLM
queue (1 slot, shallow shed depth) — once plain, once with
concurrency scaling enabled — and compares what the gate did.

The acceptance bar is the tentpole's: with burst routing on, the fleet
suffers at most **half** the WLM sheds of the burst-off run, and every
comparable query pair returns bit-identical results (burst clusters
serve from a snapshot whose per-table epochs still match the live
tables, so routed reads cannot observe different data).

The fleet is read-only (dashboards + ad-hoc, no ETL): epochs never
move, so every routed query passes the freshness check, and both
replays are deterministic enough to diff fingerprint-by-fingerprint.
"""

from __future__ import annotations

from repro.cloud.environment import CloudEnvironment
from repro.controlplane.service import RedshiftService
from repro.engine.wlm import QueueConfig
from repro.replay import FleetProfile, TableSpec, diff_reports, replay, synthesize
from repro.server import BurstConfig, ServerConfig

ROWS = 8_000
#: 64 concurrent sessions: 52 dashboards cycling aggregate templates,
#: 12 ad-hoc analysts with varying range predicates.
PROFILE = FleetProfile(
    dashboards=52,
    adhoc=12,
    etl=0,
    duration_s=0.5,
    dashboard_think_s=0.02,
    adhoc_think_s=0.04,
)
TABLE = TableSpec(
    name="burst_bench", key_column="a", numeric_column="b", key_high=997
)
#: The undersized queue both replays run against: one slot, and any
#: arrival finding 2 queries already waiting is shed.
TIGHT = ServerConfig(
    queues=(
        QueueConfig(
            "default", slots=1, memory_fraction=1.0, max_queue_depth=2
        ),
    )
)


def build():
    env = CloudEnvironment(seed=1606)
    env.ec2.preconfigure("dw2.large", 8)
    svc = RedshiftService(env)
    managed, _ = svc.create_cluster("a16-main", node_count=2,
                                    block_capacity=1024)
    session = managed.connect()
    session.execute(
        f"CREATE TABLE {TABLE.name} (a int, b int) DISTSTYLE EVEN"
    )
    managed.engine.register_inline_source(
        "bench://burst", [f"{i % 997}|{i}" for i in range(ROWS)]
    )
    session.execute(f"COPY {TABLE.name} FROM 'bench://burst'")
    # The snapshot the burst cluster will restore from; taken after the
    # load so its captured table epochs match the live ones for the
    # whole (read-only) replay.
    svc.snapshot_cluster("a16-main", kind="system")
    return env, svc, managed


def test_a16_burst_halves_wlm_sheds(reporter, bench_record):
    env, svc, managed = build()
    workload = synthesize(PROFILE, [TABLE], seed="bench-a16")

    off = replay(workload, managed.engine, config=TIGHT)

    def attach_burst(server):
        svc.enable_concurrency_scaling(
            "a16-main",
            server,
            BurstConfig(
                burst_queue_depth_threshold=1,
                burst_idle_timeout_s=10_000.0,
            ),
        )

    on = replay(
        workload, managed.engine, config=TIGHT, on_server=attach_burst
    )

    sheds_off = sum(off.metrics.sheds.values())
    sheds_on = sum(on.metrics.sheds.values())
    burst = on.metrics.burst
    diff = diff_reports(off, on)

    lines = [
        f"fleet: {PROFILE.sessions} sessions, {len(workload)} queries "
        f"({ROWS} rows, 1 slot, shed depth 2)",
        f"burst off: {sheds_off} sheds, {off.error_count} errors, "
        f"wall {off.wall_s:.2f}s",
        f"burst on:  {sheds_on} sheds, {on.error_count} errors, "
        f"wall {on.wall_s:.2f}s",
        f"routed to burst: {burst.get('routed', 0)} "
        f"(provisions={burst.get('provisions', 0)}, "
        f"fallbacks={burst.get('fallbacks', 0)}, "
        f"stale_rejects={burst.get('stale_rejects', 0)})",
        f"result diff: {diff.compared} compared, "
        f"{len(diff.mismatches)} mismatches, {len(diff.missing)} missing",
    ]
    reporter("a16: WLM sheds with concurrency scaling off vs on", lines)
    bench_record(
        queries=len(workload),
        sheds_off=sheds_off,
        sheds_on=sheds_on,
        routed=burst.get("routed", 0),
        provisions=burst.get("provisions", 0),
        fallbacks=burst.get("fallbacks", 0),
        stale_rejects=burst.get("stale_rejects", 0),
        compared=diff.compared,
        mismatches=len(diff.mismatches),
    )

    # The undersized queue must really have been saturated...
    assert sheds_off > 0, "burst-off run never shed; tighten the config"
    # ...the burst cluster must have actually taken load...
    assert burst.get("provisions", 0) >= 1
    assert burst.get("routed", 0) > 0
    # ...the CI bar: at least 2x fewer sheds with burst routing on...
    assert 2 * sheds_on <= sheds_off, (
        f"burst on shed {sheds_on}, off shed {sheds_off}: "
        "expected at least a 2x reduction"
    )
    # ...and not at the cost of correctness: every comparable pair is
    # bit-identical and nothing vanished.
    assert diff.compared > 0
    assert not diff.mismatches, diff.mismatches[:3]
    assert not diff.missing
