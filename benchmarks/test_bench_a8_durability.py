"""Ablation a8 — replication, cohorting, and the durability window (§2.1).

"Loss of durability requires multiple faults to occur in the time window
from the first fault to re-replication or backup to Amazon S3."

Monte Carlo over disk fleets: loss events vs re-replication window, the
S3 copy's effect, and the cohort-size trade-off (blast radius vs
correlated-failure exposure) the paper describes.
"""

from repro.replication import CohortPlan, DurabilityModel, annual_durability
from repro.util.units import HOUR


def test_a8_window_sweep(benchmark, reporter):
    lines = ["re-replication window | loss events / 10 fleet-years"]
    losses = []
    for window_hours in (0.5, 2, 8, 24):
        model = DurabilityModel(
            disk_count=4000,
            rereplication_window_s=window_hours * HOUR,
            s3_backed=False,
            seed=81,
        )
        outcome = model.simulate_years(10)
        losses.append(outcome["loss_events"])
        lines.append(f"{window_hours:20.1f}h | {outcome['loss_events']:6d}")
    benchmark.pedantic(
        DurabilityModel(disk_count=500, seed=1).simulate_years, args=(2,),
        iterations=1, rounds=1,
    )
    reporter("a8 — loss events vs re-replication window", lines)
    assert losses == sorted(losses)  # longer window, more loss
    assert losses[0] < losses[-1]


def test_a8_s3_copy_dominates(benchmark, reporter):
    base = DurabilityModel(disk_count=4000, s3_backed=False, seed=82)
    backed = DurabilityModel(disk_count=4000, s3_backed=True, seed=82)
    lossy = benchmark.pedantic(
        base.simulate_years, args=(10,), iterations=1, rounds=1
    )
    safe = backed.simulate_years(10)
    analytic = annual_durability(
        disk_afr=0.04, rereplication_window_s=2 * HOUR,
        disks_per_cohort=8, s3_backed=True,
    )
    reporter(
        "a8 — the S3 copy",
        [
            f"without S3 backup: {lossy['loss_events']} loss events / 10 y",
            f"with S3 backup: {safe['loss_events']} loss events "
            f"({safe['near_misses']} in-cluster double faults absorbed)",
            f"analytic annual durability with S3: {analytic:.11f} "
            f"(paper: 99.9999999% for the S3 tier itself)",
        ],
    )
    assert safe["loss_events"] == 0
    assert safe["near_misses"] == lossy["loss_events"]
    assert analytic > 1 - 1e-9


def test_a8_cohort_tradeoff(benchmark, reporter):
    """Small cohorts bound the blast radius; large cohorts expose more
    disk pairs to correlated loss — the balance §2.1 describes."""
    lines = ["cohort size | blast radius | loss events / 10 y"]
    losses = {}
    for cohort in (4, 16, 64):
        model = DurabilityModel(
            disk_count=4096,
            cohort_size_disks=cohort,
            rereplication_window_s=8 * HOUR,
            seed=83,
        )
        outcome = model.simulate_years(10)
        losses[cohort] = outcome["loss_events"]
        plan = CohortPlan(
            [f"n{i}" for i in range(4096 // 8)], cohort_size=max(2, cohort // 8)
        )
        lines.append(
            f"{cohort:11d} | {plan.blast_radius('n0'):12d} nodes | "
            f"{outcome['loss_events']:6d}"
        )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reporter("a8 — cohort size trade-off", lines)
    # More disks in a cohort = more vulnerable pairs = more loss events.
    assert losses[4] <= losses[16] <= losses[64]


def test_a8_engine_level_failover(benchmark, reporter):
    """The integration-level version: a disk dies mid-workload; reads keep
    succeeding from the secondary and recovery restores redundancy."""
    from repro import Cluster
    from repro.replication import ReplicationManager

    cluster = Cluster(node_count=4, slices_per_node=2, block_capacity=256)
    session = cluster.connect()
    session.execute("CREATE TABLE d (k int, v int) DISTKEY(k)")
    cluster.register_inline_source(
        "bench://d", [f"{i}|{i}" for i in range(8000)]
    )
    session.execute("COPY d FROM 'bench://d'")
    manager = ReplicationManager(cluster, cohort_size=2)
    manager.sync_from_cluster()

    failed = manager.fail_node("node-1")
    at_risk = len(manager.at_risk_blocks())
    restored = 0
    for slice_id in failed:
        nbytes, _ = manager.recover_slice(slice_id)
        restored += nbytes
    after = len(manager.at_risk_blocks())
    result = benchmark.pedantic(
        session.execute, args=("SELECT count(*), sum(v) FROM d",),
        iterations=1, rounds=1,
    )
    reporter(
        "a8 — engine failover and recovery",
        [
            f"node failure put {at_risk} blocks at single-copy risk",
            f"re-replication restored {restored:,d} bytes; "
            f"{after} blocks still at risk",
            f"query after recovery: count={result.rows[0][0]} (correct)",
        ],
    )
    assert result.rows[0][0] == 8000
    assert after == 0
