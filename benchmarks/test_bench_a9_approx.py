"""Ablation a9 — approximate aggregates (§4).

"Speed and expressibility are key attributes here, for example, guiding
our work on approximate functions. In time, we would like to build
distributed approximate equivalents for all non-linear exact operations."

APPROXIMATE COUNT(DISTINCT) vs exact: error, memory (constant HLL sketch
vs full distinct set), bytes moved to the leader (mergeable sketches vs
set union), and wall time.
"""

import sys
import time

from repro import Cluster
from repro.sql.hll import HyperLogLog


def build(cardinality: int, rows: int = 50_000):
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("CREATE TABLE visits (visitor varchar(24)) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://visits",
        [f"user-{i % cardinality:08d}" for i in range(rows)],
    )
    session.execute("COPY visits FROM 'bench://visits'")
    return session


def test_a9_accuracy_sweep(benchmark, reporter):
    lines = ["true distinct | exact | approximate | relative error"]
    for cardinality in (100, 5_000, 40_000):
        session = build(cardinality)
        exact = session.execute(
            "SELECT count(DISTINCT visitor) FROM visits"
        ).scalar()
        approx = session.execute(
            "SELECT APPROXIMATE count(DISTINCT visitor) FROM visits"
        ).scalar()
        error = abs(approx - exact) / exact
        lines.append(
            f"{cardinality:13d} | {exact:5d} | {approx:11d} | {error:13.2%}"
        )
        assert error < 0.05, (cardinality, error)
    session = build(5000)
    benchmark(
        session.execute,
        "SELECT APPROXIMATE count(DISTINCT visitor) FROM visits",
    )
    reporter("a9 — approximate count(distinct) accuracy", lines)


def test_a9_memory_constant_vs_linear(benchmark, reporter):
    """The sketch stays 4 KiB regardless of cardinality; the exact state
    is the distinct set itself."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    lines = ["distinct values | HLL bytes | exact set bytes"]
    for n in (1_000, 100_000):
        hll = HyperLogLog(12)
        exact: set = set()
        for i in range(n):
            value = f"user-{i}"
            hll.add(value)
            exact.add(value)
        set_bytes = sys.getsizeof(exact) + sum(
            sys.getsizeof(v) for v in exact
        )
        lines.append(
            f"{n:15,d} | {hll.size_bytes:9,d} | {set_bytes:15,d}"
        )
    reporter("a9 — memory: constant sketch vs linear set", lines)
    hll = HyperLogLog(12)
    assert hll.size_bytes == 4096


def test_a9_distributed_merge_bytes(benchmark, reporter):
    """Distribution is the point: HLL partials merge at the leader in
    O(sketch), the exact path ships every distinct value."""
    session = build(30_000)
    exact = session.execute("SELECT count(DISTINCT visitor) FROM visits")
    approx = benchmark(
        session.execute,
        "SELECT APPROXIMATE count(DISTINCT visitor) FROM visits",
    )
    reporter(
        "a9 — leader-bound bytes, exact vs approximate",
        [
            f"exact:       {exact.stats.network.bytes_to_leader:,d} bytes "
            f"to the leader",
            f"approximate: {approx.stats.network.bytes_to_leader:,d} bytes",
        ],
    )
    # Both report a per-group state; the *memory* difference is the
    # headline (above). Width accounting per state is schema-based, so
    # just assert both paths returned consistent answers.
    assert abs(approx.rows[0][0] - exact.rows[0][0]) / exact.rows[0][0] < 0.05


def test_a9_speed(benchmark, reporter):
    session = build(40_000, rows=60_000)

    start = time.perf_counter()
    session.execute("SELECT count(DISTINCT visitor) FROM visits")
    exact_s = time.perf_counter() - start
    start = time.perf_counter()
    session.execute("SELECT APPROXIMATE count(DISTINCT visitor) FROM visits")
    approx_s = time.perf_counter() - start
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reporter(
        "a9 — wall time at 60k rows / 40k distinct",
        [
            f"exact:       {exact_s * 1000:.0f} ms",
            f"approximate: {approx_s * 1000:.0f} ms",
        ],
    )
    # The Python HLL does more per-row work than set.add; the win is
    # memory and merge bytes, so only assert same order of magnitude.
    assert approx_s < exact_s * 10
