"""Ablation a12 — the leader-side query result cache.

Redshift serves repeated queries straight from a leader-side result
cache: same SQL, same plan, unchanged inputs — the stored rows come back
without touching the compute fleet (§2.1's "sub-second dashboard"
behaviour). This ablation measures the three states across all four
executors: cold (first execution, result stored), warm (epoch-validated
hit, execution skipped), and invalidated (a write moved the scanned
table's epoch, so the next read recomputes).

The acceptance bar is a >= 10x warm-over-cold speedup per executor —
a hit is a dictionary lookup plus epoch comparisons, so anything less
means the cache is doing real work it shouldn't.
"""

import time

from repro import Cluster

ROWS = 120_000
QUERY = (
    "SELECT a, count(*), sum(b), avg(c) FROM f "
    "WHERE b > 10000 AND c < 40.0 GROUP BY a ORDER BY a"
)
EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def build(rows: int = ROWS) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("CREATE TABLE f (a int, b int, c float) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(rows)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster


def _connect(cluster, executor: str):
    if executor == "parallel":
        # Explicit degree: the default collapses to serial on 1-core
        # machines and this ablation wants the real dispatch path.
        session = cluster.connect(executor="parallel", parallelism=2)
    else:
        session = cluster.connect(executor)
    # The bench conftest defaults the result cache off; this ablation is
    # the one place that measures the cache itself.
    session.execute("SET enable_result_cache = on")
    return session


def test_a12_cold_warm_invalidated(benchmark, reporter, bench_record):
    cluster = build()
    lines = [
        "executor   |    cold |     warm | invalidated | warm speedup",
    ]
    metrics = {}
    session = None
    for executor in EXECUTORS:
        session = _connect(cluster, executor)
        # One untimed query first: fork/thread pools register their
        # slices (a wildcard epoch bump) and codegen caches fill, so the
        # timed runs isolate the result cache itself.
        session.execute("SELECT count(*) FROM f")

        t0 = time.perf_counter()
        cold = session.execute(QUERY)
        cold_s = time.perf_counter() - t0
        assert not cold.stats.result_cache_hit

        warm_s = float("inf")
        warm = None
        for _ in range(5):
            t0 = time.perf_counter()
            warm = session.execute(QUERY)
            warm_s = min(warm_s, time.perf_counter() - t0)
        assert warm.stats.result_cache_hit
        assert warm.rows == cold.rows  # bit-identical, not re-derived

        session.execute("INSERT INTO f VALUES (0, 99999, 0.0)")
        t0 = time.perf_counter()
        invalidated = session.execute(QUERY)
        invalidated_s = time.perf_counter() - t0
        assert not invalidated.stats.result_cache_hit
        assert invalidated.rows != cold.rows  # the insert is visible

        speedup = cold_s / warm_s
        lines.append(
            f"{executor:10} | {cold_s * 1000:5.1f} ms | "
            f"{warm_s * 1000:6.3f} ms | {invalidated_s * 1000:8.1f} ms | "
            f"{speedup:7.0f}x"
        )
        metrics[f"{executor}_cold_ms"] = round(cold_s * 1000, 3)
        metrics[f"{executor}_warm_ms"] = round(warm_s * 1000, 3)
        metrics[f"{executor}_invalidated_ms"] = round(invalidated_s * 1000, 3)
        metrics[f"{executor}_speedup"] = round(speedup, 1)
        # The acceptance bar: a warm hit skips execution entirely.
        assert speedup >= 10

    benchmark.pedantic(
        lambda: session.execute(QUERY), iterations=1, rounds=1
    )
    reporter("a12 — result cache: cold vs warm vs invalidated (120k rows)", lines)
    rc = cluster.result_cache
    bench_record(
        **metrics,
        cache_hits=rc.hits,
        cache_misses=rc.misses,
        cache_stores=rc.stores,
        cache_invalidations=rc.invalidations,
    )


def test_a12_per_table_invalidation_precision(reporter, bench_record):
    """The tentpole's precision win: a write to one table leaves other
    tables' warm entries (and their latency) untouched."""
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("SET enable_result_cache = on")
    for name in ("f", "g"):
        session.execute(
            f"CREATE TABLE {name} (a int, b int, c float) DISTSTYLE EVEN"
        )
        cluster.register_inline_source(
            f"bench://{name}",
            [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(40_000)],
        )
        session.execute(f"COPY {name} FROM 'bench://{name}'")

    sql = {
        name: QUERY.replace("FROM f", f"FROM {name}") for name in ("f", "g")
    }
    for name in ("f", "g"):
        session.execute(sql[name])  # prime both entries

    session.execute("INSERT INTO g VALUES (0, 99999, 0.0)")

    t0 = time.perf_counter()
    kept = session.execute(sql["f"])
    kept_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    recomputed = session.execute(sql["g"])
    recomputed_s = time.perf_counter() - t0

    assert kept.stats.result_cache_hit  # f's entry survived g's write
    assert not recomputed.stats.result_cache_hit
    reporter(
        "a12 — per-table invalidation precision (write to g only)",
        [
            f"untouched f: {kept_s * 1000:7.3f} ms (cache hit)",
            f"mutated   g: {recomputed_s * 1000:7.1f} ms (recomputed)",
        ],
    )
    bench_record(
        kept_ms=round(kept_s * 1000, 3),
        recomputed_ms=round(recomputed_s * 1000, 3),
    )
