"""Ablation a11 — slice-parallel morsel execution.

The paper's compute model gives every slice of every compute node its own
core and runs each query segment on all slices at once (§2.1). The serial
executors simulate that layout but drain the slices one after another on
a single core; the parallel engine actually fans scan→filter→aggregate
pipelines out to per-slice worker processes and merges partial states on
the leader. This ablation measures that fan-out on a scan-heavy partial
aggregation at parallelism 1, 2 and 4.

The JSON entry records ``cpu_count`` so a trajectory diff can tell a
genuine regression from a smaller runner; the 1.5x acceptance bar only
applies on machines with at least 4 cores — on smaller runners the test
records its timings and then *skips* the bar (visible in the report, not
silently passed). Local runners: ``pytest benchmarks/test_bench_a11_parallel.py
--parallel-bench`` enforces the bar regardless of what ``os.cpu_count()``
claims, for containers that under-report their cores.
"""

import os
import time

import pytest

from repro import Cluster

ROWS = 240_000
QUERY = (
    "SELECT a, count(*), sum(b), min(b), max(b) FROM f "
    "WHERE b % 3 <> 1 GROUP BY a"
)


def build(rows: int = ROWS) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute("CREATE TABLE f (a int, b int, c float) DISTSTYLE EVEN")
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(rows)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster


def run_timed(cluster, parallelism: int, repeats: int = 3):
    session = cluster.connect(executor="parallel", parallelism=parallelism)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(QUERY)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_a11_parallel_scaling(benchmark, reporter, bench_record, request):
    cluster = build()
    try:
        timings = {}
        results = {}
        for degree in (1, 2, 4):
            timings[degree], results[degree] = run_timed(cluster, degree)
        benchmark.pedantic(
            lambda: cluster.connect(
                executor="parallel", parallelism=4
            ).execute(QUERY),
            iterations=1, rounds=1,
        )
        # Bit-identical merge across degrees (integer aggregates).
        assert (
            sorted(results[1].rows)
            == sorted(results[2].rows)
            == sorted(results[4].rows)
        )
        serial_r = cluster.connect(executor="volcano").execute(QUERY)
        assert sorted(serial_r.rows) == sorted(results[4].rows)

        cores = os.cpu_count() or 1
        reporter(
            "a11 — slice-parallel partial aggregation, 240k rows "
            f"({cores} cores)",
            [
                "parallelism | best of 3 | speedup vs parallelism 1",
                *(
                    f"{degree:11d} | {timings[degree] * 1000:7.1f} ms | "
                    f"{timings[1] / timings[degree]:.2f}x"
                    for degree in (1, 2, 4)
                ),
            ],
        )
        bench_record(
            stats=results[4].stats,
            cpu_count=cores,
            parallel1_ms=round(timings[1] * 1000, 3),
            parallel2_ms=round(timings[2] * 1000, 3),
            parallel4_ms=round(timings[4] * 1000, 3),
            speedup_p4=round(timings[1] / timings[4], 3),
        )
        # Acceptance bar: 4 workers must beat the inline run by 1.5x on a
        # machine that actually has the cores; smaller runners skip it
        # (their timings and cpu_count are already in BENCH_a11.json).
        if cores < 4 and not request.config.getoption("--parallel-bench"):
            pytest.skip(
                f"parallel speedup bar needs >= 4 cores, runner has {cores} "
                "(timings recorded; pass --parallel-bench on a local "
                "multi-core machine to enforce the bar)"
            )
        assert timings[4] < timings[1] / 1.5
    finally:
        cluster.close()


def test_a11_worker_telemetry(reporter, bench_record):
    """The fan-out is observable: every slice reports morsels and the
    per-step summary carries the degree of parallelism."""
    cluster = build(60_000)
    try:
        session = cluster.connect(executor="parallel", parallelism=4)
        result = session.execute(QUERY)
        slices = session.execute(
            "SELECT slice, morsels, scanned_rows FROM stv_slice_exec "
            "ORDER BY slice"
        ).rows
        assert len(slices) == cluster.slice_count
        assert sum(r[2] for r in slices) == 60_000
        workers = session.execute(
            "SELECT max(workers) FROM svl_query_summary"
        ).scalar()
        assert workers == 4
        reporter(
            "a11 — per-slice worker accounting (60k rows, parallelism 4)",
            [
                "slice | morsels | rows scanned",
                *(f"{r[0]} | {r[1]:7d} | {r[2]:12d}" for r in slices),
            ],
        )
        bench_record(
            stats=result.stats,
            slices=len(slices),
            morsels=sum(r[1] for r in slices),
        )
    finally:
        cluster.close()
