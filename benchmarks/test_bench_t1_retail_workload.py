"""Table t1 — the §1 Amazon Retail numbers, paper vs model vs engine.

Three layers:

1. The calibrated analytic model (``repro.perfmodel``) reproduces the
   paper-scale numbers: daily 5B-row load, 150B-row backfill, backup,
   restore, the 2T×6B join, and the legacy/Hadoop comparators.
2. The real Python engine runs the same operations scaled down, proving
   the structural behaviours the model assumes (parallel load, co-located
   join, incremental backup).
3. The calibration harness reports the engine's measured per-slice rates
   and the documented Python-vs-hardware scale factor.
"""

from repro.perfmodel import (
    HadoopModel,
    LegacyWarehouseModel,
    RedshiftPerfModel,
    RetailWorkload,
    calibrate_engine,
)
from repro.util.units import format_duration


def test_t1_paper_vs_model(benchmark, reporter):
    workload = RetailWorkload()
    model = RedshiftPerfModel(node_type="dw1.8xlarge", node_count=100)
    out = benchmark(model.retail_summary, workload)
    paper = workload.PAPER_RESULTS

    lines = ["operation | paper | model | model/paper"]
    for key, label in (
        ("daily_load_s", "daily load (5B rows)"),
        ("backfill_s", "backfill (150B rows)"),
        ("backup_s", "backup"),
        ("restore_s", "restore"),
        ("join_s", "2T x 6B join"),
    ):
        ratio = out[key] / paper[key]
        lines.append(
            f"{label:22s} | {format_duration(paper[key]):>9s} | "
            f"{format_duration(out[key]):>9s} | {ratio:.2f}x"
        )
    reporter("Table t1 — Amazon Retail workload, paper vs model", lines)

    # Shape: same order of magnitude for every operation.
    for key in ("daily_load_s", "backfill_s", "backup_s", "restore_s", "join_s"):
        assert 0.2 <= out[key] / paper[key] <= 5.0, key


def test_t1_comparators(benchmark, reporter):
    workload = RetailWorkload()
    join = workload.click_product_join()
    redshift = RedshiftPerfModel(node_type="dw1.8xlarge", node_count=100)
    legacy = LegacyWarehouseModel()
    hadoop = HadoopModel()

    redshift_s = benchmark(redshift.join_seconds, join)
    legacy_s = legacy.join_seconds(join)
    hadoop_s = hadoop.join_seconds(join)

    lines = [
        "system | 2T x 6B join | paper says",
        f"Redshift | {format_duration(redshift_s):>9s} | < 14 min",
        f"legacy DW | {format_duration(legacy_s):>9s} | did not finish in a week",
        f"Hadoop | {format_duration(hadoop_s):>9s} | (not quoted; scans 1 mo/h)",
        f"Redshift speedup over legacy: {legacy_s / redshift_s:,.0f}x",
    ]
    reporter("Table t1 — comparators on the big join", lines)

    assert redshift_s < 20 * 60
    assert legacy_s > 7 * 24 * 3600          # "over a week"
    assert redshift_s < hadoop_s < legacy_s  # the paper's ordering


def test_t1_scan_rate_quotes(benchmark, reporter):
    """§1 quotes both comparators' scan rates directly; the models must
    reproduce them exactly (they are inputs, so this guards regressions)."""
    from repro.util.units import TB

    legacy = LegacyWarehouseModel()
    hadoop = HadoopModel()
    week = benchmark(legacy.scan_seconds, 7 * 2 * TB)
    month = hadoop.scan_seconds(30 * 2 * TB)
    reporter(
        "Table t1 — comparator scan-rate anchors",
        [
            f"legacy: 1 week of logs in {format_duration(week)} (paper: 1 h)",
            f"hadoop: 1 month of logs in {format_duration(month)} (paper: 1 h)",
        ],
    )
    assert abs(week - 3600) < 1
    assert abs(month - 3600) < 1


def test_t1_engine_calibration(benchmark, reporter):
    calibration = benchmark.pedantic(
        calibrate_engine, kwargs={"rows": 40_000}, iterations=1, rounds=1
    )
    profile_scan_rows = 0.75e9 / 24  # dw1.8xlarge scan bytes/s over ~24B/row
    slowdown = calibration.python_slowdown_vs_profile(
        profile_scan_rows / 16  # per slice
    )
    reporter(
        "Table t1 — engine calibration (the documented scale factor)",
        [
            f"engine scan: {calibration.scan_rows_per_s_per_slice:,.0f} rows/s/slice",
            f"engine ingest: {calibration.ingest_rows_per_s_per_slice:,.0f} rows/s/slice",
            f"engine join probe: {calibration.probe_rows_per_s_per_slice:,.0f} rows/s/slice",
            f"python-vs-modelled-hardware slowdown: {slowdown:,.0f}x",
        ],
    )
    assert calibration.scan_rows_per_s_per_slice > 1000
    assert slowdown > 1  # Python is, indeed, not a 2013 C++ engine
