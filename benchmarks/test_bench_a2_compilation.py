"""Ablation a2 — query compilation vs interpreted execution (§2.1).

"The use of query compilation adds a fixed overhead per query that we
feel is generally amortized by the tighter execution at compute nodes vs.
the overhead of execution in a general-purpose set of executor
functions."

Measures both executors on identical plans across data sizes: the
compiled executor must win on large scans, the fixed compile cost must be
visible, and the crossover (where compilation starts paying) must sit at
small row counts.
"""

import time

from repro import Cluster


def build(rows: int) -> Cluster:
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=4096)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE f (a int, b int, c float) DISTSTYLE EVEN"
    )
    cluster.register_inline_source(
        "bench://f", [f"{i % 97}|{i}|{(i % 31) * 1.5}" for i in range(rows)]
    )
    session.execute("COPY f FROM 'bench://f'")
    return cluster

QUERY = "SELECT a, count(*), sum(b), avg(c) FROM f WHERE b > 10000 AND c < 40.0 GROUP BY a"


def run_timed(cluster, executor: str, repeats: int = 3):
    session = cluster.connect(executor)
    best = float("inf")
    compile_s = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(QUERY)
        best = min(best, time.perf_counter() - start)
        compile_s = result.stats.compile_seconds
    return best, compile_s


def test_a2_compiled_wins_at_scale(benchmark, reporter):
    cluster = build(120_000)
    volcano_s, _ = run_timed(cluster, "volcano")
    compiled_s, compile_cost = run_timed(cluster, "compiled")
    benchmark.pedantic(
        lambda: cluster.connect("compiled").execute(QUERY),
        iterations=1, rounds=1,
    )
    reporter(
        "a2 — compiled vs interpreted, 120k-row aggregation",
        [
            f"volcano:  {volcano_s * 1000:7.1f} ms",
            f"compiled: {compiled_s * 1000:7.1f} ms "
            f"(incl. {compile_cost * 1000:.1f} ms compile)",
            f"speedup: {volcano_s / compiled_s:.2f}x",
        ],
    )
    assert compiled_s < volcano_s / 1.25  # tighter execution wins
    assert compile_cost < compiled_s * 0.2  # overhead amortized


def test_a2_fixed_overhead_visible_on_tiny_input(benchmark, reporter):
    cluster = build(50)
    volcano_s, _ = run_timed(cluster, "volcano", repeats=5)
    # The fixed overhead is a *first-execution* cost: the segment cache
    # reuses the compiled pipeline afterwards ("compiled code ... is
    # cached", §2), so it must be measured on the cold run.
    session = cluster.connect("compiled")
    start = time.perf_counter()
    cold = session.execute(QUERY)
    cold_s = time.perf_counter() - start
    cold_share = cold.stats.compile_seconds / cold_s if cold_s else 0
    warm_s, warm_compile = run_timed(cluster, "compiled", repeats=5)
    benchmark.pedantic(
        lambda: cluster.connect("compiled").execute(QUERY),
        iterations=1, rounds=1,
    )
    reporter(
        "a2 — fixed overhead on a 50-row input",
        [
            f"volcano:        {volcano_s * 1000:6.2f} ms",
            f"compiled, cold: {cold_s * 1000:6.2f} ms "
            f"({cold_share:.0%} of it compile)",
            f"compiled, warm: {warm_s * 1000:6.2f} ms "
            f"({warm_compile * 1000:.2f} ms compile — segment-cache reuse)",
            "the paper's 'fixed overhead per query' dominates at this "
            "scale, until the compiled-object cache removes it",
        ],
    )
    # The compile cost dominates the first tiny query (>20% of runtime) —
    # and the segment cache then eliminates it on repeats.
    assert cold_share > 0.2
    assert warm_compile < cold.stats.compile_seconds


def test_a2_amortization_curve(benchmark, reporter):
    lines = ["rows | volcano | compiled | speedup"]
    speedups = []
    for rows in (1000, 10_000, 60_000):
        cluster = build(rows)
        volcano_s, _ = run_timed(cluster, "volcano")
        compiled_s, _ = run_timed(cluster, "compiled")
        speedup = volcano_s / compiled_s
        speedups.append(speedup)
        lines.append(
            f"{rows:6d} | {volcano_s * 1000:7.1f} ms | "
            f"{compiled_s * 1000:7.1f} ms | {speedup:.2f}x"
        )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reporter("a2 — amortization with input size", lines)
    # The advantage grows (or at least persists) with scale.
    assert speedups[-1] >= speedups[0] * 0.8
    assert speedups[-1] > 1.2
