"""Figure 1 — Data Analysis Gap in the Enterprise, 1990–2020.

Regenerates the two curves (enterprise data vs data in warehouses) from
the CAGR constants the paper quotes, and checks the figure's qualitative
content: the curves diverge, the gap accelerates after ~2013, and the
implied late-era doubling time matches the quoted "~20 months".
"""

from repro.growth import DataGrowthModel


def test_fig1_analysis_gap(benchmark, reporter):
    model = DataGrowthModel()
    points = benchmark(model.series)

    by_year = {p.year: p for p in points}
    lines = ["year | enterprise data | warehouse data | dark fraction"]
    for year in (1990, 1995, 2000, 2005, 2010, 2015, 2020):
        p = by_year[year]
        lines.append(
            f"{p.year} | {p.enterprise_data:12.1f}x | {p.warehouse_data:9.1f}x"
            f" | {p.dark_fraction:6.1%}"
        )
    lines.append(
        f"implied doubling time (late era): "
        f"{model.doubling_months_late_era():.0f} months (paper: ~20)"
    )
    reporter("Figure 1 — the analysis gap", lines)

    # Shape assertions: monotone divergence, acceleration, dark majority.
    gaps = [p.enterprise_data / p.warehouse_data for p in points]
    assert all(b >= a for a, b in zip(gaps, gaps[1:]))
    assert by_year[2020].dark_fraction > 0.95
    assert by_year[2000].dark_fraction < by_year[2010].dark_fraction
    growth_2014 = by_year[2015].enterprise_data / by_year[2014].enterprise_data
    growth_2000 = by_year[2001].enterprise_data / by_year[2000].enterprise_data
    assert growth_2014 > growth_2000  # the recent acceleration
    assert 15 <= model.doubling_months_late_era() <= 25
