"""Ablation a4 — z-curves vs projections vs compound keys (§3.3).

"A missing projection can result in a full table scan while an additional
one can greatly impact load time. By comparison, a multidimensional index
using z-curves degrades more gracefully with excess participation and
still provides utility if leading columns are not specified."

Measures block pruning for predicates on each key column under (i) an
interleaved z-curve key, (ii) a compound key, and (iii) a C-Store-style
projection set, plus the projections' load amplification.
"""

from repro import Cluster
from repro.sortkeys import ProjectionSet

GRID = 96  # GRID x GRID rows


def build(sort_clause: str) -> Cluster:
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=256)
    s = cluster.connect()
    s.execute(
        f"CREATE TABLE grid (x int, y int, z int, v int) DISTSTYLE EVEN "
        f"{sort_clause}"
    )
    lines = [
        f"{x}|{y}|{(x * 7 + y * 13) % GRID}|{x * GRID + y}"
        for x in range(GRID)
        for y in range(GRID)
    ]
    cluster.register_inline_source("bench://grid", lines)
    s.execute("COPY grid FROM 'bench://grid'")
    return cluster


def pruning_fraction(cluster, predicate: str) -> float:
    session = cluster.connect()
    r = session.execute(f"SELECT count(*) FROM grid WHERE {predicate}")
    stats = r.stats.scan
    total = stats.blocks_read + stats.blocks_skipped
    return stats.blocks_skipped / total if total else 0.0


def test_a4_graceful_degradation(benchmark, reporter):
    interleaved = build("INTERLEAVED SORTKEY(x, y, z)")
    compound = build("SORTKEY(x, y, z)")
    benchmark.pedantic(
        lambda: pruning_fraction(interleaved, "x < 8"), iterations=1, rounds=1
    )

    lines = ["predicate | interleaved pruned | compound pruned"]
    results = {}
    for column in ("x", "y", "z"):
        predicate = f"{column} < 8"
        i = pruning_fraction(interleaved, predicate)
        c = pruning_fraction(compound, predicate)
        results[column] = (i, c)
        lines.append(f"{predicate:9s} | {i:18.1%} | {c:15.1%}")
    reporter("a4 — pruning by predicate column and key style", lines)

    # Compound is unbeatable on its leading column...
    assert results["x"][1] >= results["x"][0]
    # ...but collapses to zero on trailing columns, where the z-curve
    # "still provides utility": strictly positive pruning on every
    # dimension, at the cost of being merely good (not perfect) on x.
    assert results["y"][0] > 0.05 and results["y"][0] > results["y"][1]
    assert results["y"][1] < 0.05
    assert results["z"][0] > 0.05 and results["z"][0] > results["z"][1]
    assert results["z"][1] < 0.05
    assert results["x"][0] > 0.2  # graceful, not catastrophic, on x


def test_a4_projection_baseline(benchmark, reporter):
    """Projections serve only their leading column and multiply load work."""
    projections = ProjectionSet("grid")
    projections.add("by_x", ["x"])
    projections.add("by_y", ["y"])
    benchmark.pedantic(projections.choose, args=("x",), iterations=1, rounds=1)

    # Coverage: which predicates avoid a full scan?
    served = {c: projections.choose(c) is not None for c in ("x", "y", "z")}
    reporter(
        "a4 — projection coverage and cost",
        [
            f"predicate on x served: {served['x']}",
            f"predicate on y served: {served['y']}",
            f"predicate on z served: {served['z']} (missing projection => "
            f"full table scan)",
            f"load amplification: {projections.load_amplification}x "
            f"(every row written to base + each projection)",
        ],
    )
    assert served["x"] and served["y"] and not served["z"]
    assert projections.load_amplification == 3


def test_a4_zcurve_single_table_covers_all_dimensions(benchmark, reporter):
    """The z-curve's headline: one table, no redundant copies, useful
    pruning on every key dimension — where the projection design needs
    one copy per dimension to match."""
    interleaved = build("INTERLEAVED SORTKEY(x, y, z)")
    benchmark.pedantic(
        lambda: pruning_fraction(interleaved, "z < 8"), iterations=1, rounds=1
    )
    fractions = {
        c: pruning_fraction(interleaved, f"{c} < 8") for c in ("x", "y", "z")
    }
    reporter(
        "a4 — one z-ordered copy vs three projections",
        [
            f"pruning with a single interleaved table: {fractions}",
            "equivalent projection coverage needs 3 redundant copies "
            "(load amplification 4x)",
        ],
    )
    assert all(f > 0.05 for f in fractions.values())
