"""Ablation a15 — statistics-driven cost-based join optimization (§2).

The leader node's planner must pick join orders and data-movement
strategies well for MPP execution to hold up. This bench writes a
star-schema query in a pathological order — the two dimension tables are
joined first on a low-cardinality grouping column, exploding into a
90,000-row intermediate before the fact table shrinks it back down — and
measures the System-R enumerator (``SET enable_cbo``, on by default)
against written-order planning on all four executors.

With fresh statistics (COPY runs the ANALYZE path on load) the optimizer
flips the join order to put the fact table underneath, keeping every
intermediate around the fact's own cardinality.
"""

import time

from repro import Cluster

DIM_ROWS = 600
GROUPS = 4
FACT_ROWS = 1_200

QUERY = (
    "SELECT count(*), sum(c.v) FROM a JOIN b ON a.g = b.g "
    "JOIN c ON c.a_id = a.id AND c.b_id = b.id"
)

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def build():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=2048)
    s = cluster.connect()
    s.execute("CREATE TABLE a (id int, g int) DISTKEY(id)")
    s.execute("CREATE TABLE b (id int, g int) DISTKEY(id)")
    s.execute("CREATE TABLE c (a_id int, b_id int, v int) DISTKEY(a_id)")
    cluster.register_inline_source(
        "bench://a", [f"{i}|{i % GROUPS}" for i in range(DIM_ROWS)]
    )
    cluster.register_inline_source(
        "bench://b", [f"{i}|{i % GROUPS}" for i in range(DIM_ROWS)]
    )
    cluster.register_inline_source(
        "bench://c",
        [f"{i % DIM_ROWS}|{(i * 7) % DIM_ROWS}|{i}" for i in range(FACT_ROWS)],
    )
    # COPY refreshes statistics with the load (STATUPDATE), so the
    # optimizer sees fresh NDVs without an explicit ANALYZE.
    s.execute("COPY a FROM 'bench://a'")
    s.execute("COPY b FROM 'bench://b'")
    s.execute("COPY c FROM 'bench://c'")
    return cluster, s


def _median_time(s, query, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = s.execute(query)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2], result


def test_a15_optimizer_flips_pathological_join_order(
    benchmark, reporter, bench_record
):
    cluster, s = build()

    s.execute("SET enable_cbo = off")
    off_plan = "\n".join(r[0] for r in s.execute("EXPLAIN " + QUERY).rows)
    s.execute("SET enable_cbo = on")
    on_plan = "\n".join(r[0] for r in s.execute("EXPLAIN " + QUERY).rows)

    # Written order joins the dimensions first on the grouping column
    # (the exploding join); the optimizer must not keep that shape.
    assert "Hash Cond: (g = g)" in off_plan
    assert "Hash Cond: (g = g)" not in on_plan
    assert on_plan != off_plan

    lines = ["executor | written order | optimized | speedup"]
    metrics = {}
    baseline_rows = None
    for executor in EXECUTORS:
        s.execute(f"SET executor = {executor}")
        times = {}
        rows = {}
        for cbo in ("off", "on"):
            s.execute(f"SET enable_cbo = {cbo}")
            s.execute(QUERY)  # warm compile/plan caches
            times[cbo], result = _median_time(s, QUERY)
            rows[cbo] = result.rows
        # Bit-identical results regardless of plan shape.
        assert rows["on"] == rows["off"]
        if baseline_rows is None:
            baseline_rows = rows["on"]
        assert rows["on"] == baseline_rows
        speedup = times["off"] / times["on"]
        metrics[f"speedup_{executor}"] = round(speedup, 2)
        lines.append(
            f"{executor:10s} | {times['off'] * 1000:10.1f} ms | "
            f"{times['on'] * 1000:7.1f} ms | {speedup:5.1f}x"
        )
        assert speedup >= 2.0, (
            f"{executor}: optimized plan only {speedup:.2f}x faster"
        )

    # EXPLAIN ANALYZE exposes estimated vs. actual rows per operator.
    s.execute("SET enable_cbo = on")
    analyzed = "\n".join(
        r[0] for r in s.execute("EXPLAIN ANALYZE " + QUERY).rows
    )
    assert "est=" in analyzed and "actual rows=" in analyzed

    benchmark.pedantic(s.execute, args=(QUERY,), iterations=1, rounds=1)
    bench_record(rows=baseline_rows[0][0], **metrics)
    reporter(
        "a15 — cost-based optimizer vs. written join order",
        lines
        + [
            "",
            "written-order plan:",
            *off_plan.splitlines()[1:],
            "",
            "optimized plan:",
            *on_plan.splitlines()[1:],
        ],
    )
