"""Ablation a6 — streaming restore vs full restore (§2.2).

"This also allowed us to implement a streaming restore capability,
allowing the database to be opened for SQL operations after metadata and
catalog restoration ... Since the average working set for a data
warehouse is a small fraction of the total data stored, this allows
performant queries to be obtained in a small fraction of the time
required for a full restore."

Sweeps the working-set fraction and measures time-to-first-query, blocks
faulted, and the simulated time advantage at paper-like scale.
"""

from repro import Cluster
from repro.backup import BackupManager
from repro.cloud import CloudEnvironment
from repro.restore import RestoreManager
from repro.util.units import format_duration


def snapshotted(rows: int = 40_000):
    env = CloudEnvironment(seed=6)
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=512)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE logs (ts int, v int, payload varchar(32)) "
        "DISTSTYLE EVEN SORTKEY(ts)"
    )
    cluster.register_inline_source(
        "bench://logs",
        [f"{i}|{i % 100}|payload-{i % 1000}" for i in range(rows)],
    )
    s.execute("COPY logs FROM 'bench://logs'")
    backups = BackupManager(cluster, env.s3, "bkt", env.clock)
    backups.snapshot("user", label="snap")
    return env, rows


def test_a6_working_set_sweep(benchmark, reporter):
    env, rows = snapshotted()
    manager = RestoreManager(env.s3, "bkt", env.clock)

    lines = [
        "working set | faulted blocks | resident fraction | sim fetch time"
    ]
    fractions = []
    for label, span in (("1%", 0.01), ("10%", 0.10), ("50%", 0.50)):
        result = manager.streaming_restore("snap")
        session = result.cluster.connect()
        upper = int(rows * span)
        before = env.clock.now
        session.execute(
            f"SELECT count(*), sum(v) FROM logs WHERE ts < {upper}"
        )
        fetch_time = env.clock.now - before
        fractions.append(result.resident_fraction)
        lines.append(
            f"{label:>11s} | {result.faulted_blocks:14d} | "
            f"{result.resident_fraction:17.1%} | "
            f"{format_duration(fetch_time):>14s}"
        )
    benchmark.pedantic(
        manager.streaming_restore, args=("snap",), iterations=1, rounds=1
    )
    reporter("a6 — streaming restore, working-set sweep", lines)

    # Faulted fraction tracks working-set size and never exceeds it much.
    assert fractions[0] < fractions[1] < fractions[2]
    assert fractions[0] < 0.15
    assert fractions[2] < 0.8


def test_a6_time_to_first_query_advantage(benchmark, reporter):
    env, _ = snapshotted()
    manager = RestoreManager(env.s3, "bkt", env.clock)
    streaming = manager.streaming_restore("snap")
    full = manager.full_restore("snap")
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reporter(
        "a6 — time to first query",
        [
            f"streaming: {format_duration(streaming.time_to_first_query_s)}",
            f"full:      {format_duration(full.time_to_first_query_s)}",
            "(at laptop scale the fixed metadata time dominates; the "
            "paper-scale advantage is modelled below)",
        ],
    )
    assert streaming.time_to_first_query_s <= full.time_to_first_query_s


def test_a6_paper_scale_model(benchmark, reporter):
    """At the Retail workload's scale the gap is the whole story:
    metadata minutes vs a 48-hour dataset download."""
    from repro.perfmodel import RedshiftPerfModel, RetailWorkload

    model = RedshiftPerfModel(node_type="dw1.8xlarge", node_count=100)
    workload = RetailWorkload()
    full_s = benchmark(
        model.restore_seconds, workload.dataset_compressed_bytes
    )
    streaming_s = model.streaming_restore_first_query_seconds()
    reporter(
        "a6 — modelled at Retail scale",
        [
            f"full restore: {format_duration(full_s)} (paper: 48 h)",
            f"streaming first query: {format_duration(streaming_s)}",
            f"advantage: {full_s / streaming_s:,.0f}x",
        ],
    )
    assert full_s / streaming_s > 50
